//! Load generator for the batched serving layer (`metadse-serve`).
//!
//! Stands up a [`Server`] over a scratch [`ModelRegistry`] and measures
//! serving throughput and end-to-end latency under three load shapes:
//!
//! - **closed-loop single-query**: one client, batching disabled
//!   (`max_batch = 1`) — the per-query cost a caller pays without
//!   coalescing, and the baseline for the speedup row;
//! - **closed-loop batch-32**: 32 clients each keeping one request in
//!   flight against `max_batch = 32`, so workers coalesce full batches;
//! - **open-loop**: a dispatcher submitting at a fixed arrival rate
//!   (~half the measured batch-32 capacity) without waiting for
//!   completions, the shape that exposes queueing delay.
//!
//! Every family reports mean wall per request plus p50/p99 end-to-end
//! latency into `BENCH_results.json` (merge-written: `bench_report`
//! owns the other row families). The headline `serve/speedup_x1000`
//! row is batch-32 throughput over single-query throughput, ×1000.
//!
//! The serving geometry is deliberately **dispatch-bound** (2 tokens,
//! `d_model` 2, depth 16): per-op dispatch overhead dominates per-row
//! math, which is the regime micro-batching exists for — one forward
//! per batch amortizes the op dispatch across every queued row. The
//! paper-scale geometry (21 tokens, `d_model` 32, depth 2) is reported
//! alongside for transparency: there a single row already saturates
//! the dense kernels, so coalescing buys far less.
//!
//! ```text
//! cargo run --release -p metadse-bench --bin serve_bench            # full report
//! cargo run --release -p metadse-bench --bin serve_bench -- --smoke # CI p99 gate
//! ```

use std::path::Path;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use metadse::predictor::{PredictorConfig, TransformerPredictor};
use metadse::ServablePredictor;
use metadse_bench::serving::{request_row, BATCH, DISPATCH_GEOM};
use metadse_bench::timing::{black_box, human_ns, Harness, Sample};
use metadse_bench::{report, serving};
use metadse_nn::{backend, BackendKind};
use metadse_serve::{
    BatchConfig, ModelRegistry, ServeConfig, Server, SessionEngine, SessionEngineConfig,
    SessionSpec,
};

/// Name of the row the `--smoke` gate checks.
const SMOKE_ROW: &str = "serve/batch32_p99";

/// Paper-geometry plan-path row the `--smoke` gate also checks.
const PLAN_SMOKE_ROW: &str = "serve/paper_batch32_p99";

/// Session-round latency row the `--smoke` gate also checks.
const SESSION_SMOKE_ROW: &str = "serve/session_round_p99";

/// A server wired for benchmarking: fresh scratch registry publishing
/// one generation of `workload` with the given geometry. `plan` selects
/// compiled-plan execution vs the layer-stack forward (the `…@stack`
/// A/B rows), mirroring PR 6's `…@scalar` backend convention.
fn bench_server(workload: &str, geom: PredictorConfig, max_batch: usize, plan: bool) -> Server {
    let model = TransformerPredictor::new(geom, 9);
    let servable = ServablePredictor::capture(&model, None, "ipc");
    let dir = std::env::temp_dir().join("metadse_serve_bench");
    let _ = std::fs::remove_dir_all(&dir);
    let registry = Arc::new(ModelRegistry::open(dir, 2));
    registry
        .publish(workload, &servable)
        .expect("publish model");
    Server::start(
        registry,
        ServeConfig {
            batch: BatchConfig {
                max_batch,
                max_wait_us: 200,
                queue_capacity: 4096,
            },
            workers: 1,
            plan,
        },
    )
}

/// Asserts the server's window-derived quantile agrees with the load
/// generator's independent measurement of the same run.
///
/// Documented tolerance (also in EXPERIMENTS.md): the window quantile
/// reports the *lower edge* of a log2 bucket (up to 2× below the true
/// value) and measures admission→forward-end on the server's clock,
/// while the load generator measures submit→reply-received including
/// channel wake-up overhead. So the window value may sit well below the
/// measured one but never far above it:
///
/// * `window ≤ measured × 1.5 + 200 µs` (window excludes client
///   overhead; the slack absorbs scheduling noise on loaded runners),
/// * `measured ≤ window × 4 + 1 ms` (2× bucket resolution × 2× client
///   overhead margin).
fn assert_window_agreement(which: &str, win_ns: f64, measured_ns: u64) {
    let measured = measured_ns as f64;
    report::kv(
        &format!("{which} window vs measured"),
        format!(
            "{} vs {}",
            human_ns(win_ns as u128),
            human_ns(u128::from(measured_ns))
        ),
    );
    assert!(
        win_ns <= measured * 1.5 + 200_000.0,
        "window {which} {win_ns:.0} ns far above measured {measured:.0} ns"
    );
    assert!(
        measured <= win_ns * 4.0 + 1_000_000.0,
        "measured {which} {measured:.0} ns far above window {win_ns:.0} ns"
    );
}

/// `p`-th percentile (0–100) of unsorted latencies, in nanoseconds.
fn percentile(latencies: &mut [u64], p: f64) -> u64 {
    assert!(!latencies.is_empty());
    latencies.sort_unstable();
    let rank = (p / 100.0 * (latencies.len() - 1) as f64).round() as usize;
    latencies[rank]
}

/// Closed-loop run: `clients` threads each keep exactly one request in
/// flight until they have completed `per_client` requests. Returns
/// (per-request latencies ns, overall qps).
fn closed_loop(
    server: &Server,
    workload: &str,
    clients: usize,
    per_client: usize,
) -> (Vec<u64>, f64) {
    let arity = server
        .registry()
        .get(workload)
        .expect("workload published")
        .servable
        .config
        .num_params;
    // Warm the worker's model cache and the branch predictors.
    for i in 0..32 {
        server
            .submit(workload, &request_row(i, arity), None)
            .wait()
            .expect("warmup request");
    }
    let all = Mutex::new(Vec::with_capacity(clients * per_client));
    let start = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let all = &all;
            let server = &server;
            s.spawn(move || {
                let mut latencies = Vec::with_capacity(per_client);
                for i in 0..per_client {
                    let row = request_row(c * per_client + i, arity);
                    let t = Instant::now();
                    server
                        .submit(workload, &row, None)
                        .wait()
                        .expect("benchmark request");
                    latencies.push(t.elapsed().as_nanos() as u64);
                }
                all.lock().unwrap().extend(latencies);
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let latencies = all.into_inner().unwrap();
    let qps = latencies.len() as f64 / elapsed;
    (latencies, qps)
}

/// Open-loop run: a dispatcher submits `total` requests at `rate_qps`
/// without waiting (coarse sleep pacing in 8-request bursts — arrivals
/// are bursty but the mean rate holds), while a collector thread waits
/// tickets in submission order and records end-to-end latency.
fn open_loop(server: &Server, workload: &str, rate_qps: f64, total: usize) -> (Vec<u64>, f64) {
    let arity = server
        .registry()
        .get(workload)
        .expect("workload published")
        .servable
        .config
        .num_params;
    let (tx, rx) = mpsc::channel();
    let start = Instant::now();
    let mut latencies = Vec::with_capacity(total);
    std::thread::scope(|s| {
        let server = &server;
        s.spawn(move || {
            let interval = Duration::from_secs_f64(1.0 / rate_qps);
            for i in 0..total {
                let scheduled = interval.mul_f64(i as f64);
                if i % 8 == 0 {
                    let ahead = scheduled.saturating_sub(start.elapsed());
                    if ahead > Duration::from_micros(100) {
                        std::thread::sleep(ahead);
                    }
                }
                let ticket = server.submit(workload, &request_row(i, arity), None);
                tx.send((Instant::now(), ticket)).expect("collector alive");
            }
        });
        // Collect on this thread, concurrently with dispatch, so each
        // latency is read right when its ticket resolves. Tickets are
        // waited in submission order — a request that finished out of
        // turn reads slightly late, which only overstates the tail.
        for (submitted, ticket) in rx {
            ticket.wait().expect("open-loop request");
            latencies.push(submitted.elapsed().as_nanos() as u64);
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let qps = latencies.len() as f64 / elapsed;
    (latencies, qps)
}

/// Records mean + p50 + p99 rows for one load shape.
fn record_family(h: &mut Harness, family: &str, threads: usize, mut latencies: Vec<u64>, qps: f64) {
    let iters = latencies.len() as u32;
    let mean_ns = (1e9 / qps) as u128;
    for (suffix, wall_ns) in [
        ("", mean_ns),
        ("_p50", u128::from(percentile(&mut latencies, 50.0))),
        ("_p99", u128::from(percentile(&mut latencies, 99.0))),
    ] {
        h.record(Sample {
            name: format!("{family}{suffix}"),
            wall_ns,
            iters,
            threads,
            allocs: 0,
        });
    }
    report::kv(&format!("{family} throughput (qps)"), format!("{qps:.0}"));
}

/// Raw predictor cost outside the serving stack: batch-1 call and
/// per-row share of a batch-32 call — the model-level amortization
/// ceiling no serving layer can beat. Also records the batch-32 row
/// under the scalar tensor backend (`…@scalar`) so the SIMD inference
/// win is a same-machine comparison in `BENCH_results.json`.
fn raw_rows(h: &mut Harness) {
    let (model, many) = serving::raw_predict_fixture();
    let one = vec![request_row(0, DISPATCH_GEOM.num_params)];
    h.bench("serve/raw_predict_b1", || black_box(model.predict(&one)));
    let batch_ns = h
        .bench(&format!("serve/raw_predict_b{BATCH}"), || {
            black_box(model.predict(&many))
        })
        .wall_ns;
    h.record(Sample {
        name: format!("serve/raw_row_b{BATCH}"),
        wall_ns: batch_ns / BATCH as u128,
        iters: 1,
        threads: 1,
        allocs: 0,
    });
    let active = backend::kind();
    if active != BackendKind::Scalar {
        backend::set_process_kind(BackendKind::Scalar);
        h.bench(&format!("serve/raw_predict_b{BATCH}@scalar"), || {
            black_box(model.predict(&many))
        });
        backend::set_process_kind(active);
    }
}

/// Drives `sessions` exploration sessions through an in-process
/// [`SessionEngine`] over a batch-8 paper-geometry server and returns
/// per-round `step` latencies plus aggregate rounds/s. A round is the
/// session layer's unit of work — propose, batched predict through the
/// shared dedup cache, Pareto-front update, delta reply — so its
/// latency covers the whole online-DSE serving path end to end.
/// Sessions use distinct seeds: their sweeps overlap only where the
/// RNG happens to collide, which exercises the cache without letting
/// it trivially absorb the load.
fn session_load(sessions: usize) -> (Vec<u64>, f64) {
    let server = bench_server("bench", PredictorConfig::default(), 8, true);
    let engine = SessionEngine::new(SessionEngineConfig::default());
    let mut latencies = Vec::new();
    let start = Instant::now();
    for s in 0..sessions {
        let spec = SessionSpec {
            workload: "bench".to_string(),
            seed: 0xD5E + 7919 * s as u64,
            initial_samples: 16,
            refinement_rounds: 3,
            beam: 3,
            round_timeout_us: 0,
        };
        let info = engine.open(&server, &spec).expect("open session");
        for round in 1..=info.rounds_total {
            let t = Instant::now();
            engine
                .step(&server, "bench", info.session_id, round)
                .expect("session round");
            latencies.push(t.elapsed().as_nanos() as u64);
        }
        engine.close(info.session_id);
    }
    let qps = latencies.len() as f64 / start.elapsed().as_secs_f64();
    server.shutdown();
    (latencies, qps)
}

fn full_report() {
    report::banner("MetaDSE batched serving benchmark");
    report::kv(
        "hardware threads",
        metadse_parallel::available_parallelism(),
    );
    report::kv(
        "serving geometry",
        format!(
            "{} tokens, d_model {}, depth {} (dispatch-bound)",
            DISPATCH_GEOM.num_params, DISPATCH_GEOM.d_model, DISPATCH_GEOM.depth
        ),
    );
    let mut h = Harness::new().with_target_ms(300);
    raw_rows(&mut h);

    // Closed-loop single-query baseline: batching off.
    let single_qps = {
        let server = bench_server("bench", DISPATCH_GEOM, 1, true);
        let (latencies, qps) = closed_loop(&server, "bench", 1, 4000);
        record_family(&mut h, "serve/single_query", 1, latencies, qps);
        server.shutdown();
        qps
    };

    // Closed-loop batch-32, with the server's own trailing-window
    // quantiles recorded alongside the load generator's measurement and
    // cross-checked — self-validation of the observability path.
    let batch_qps = {
        let server = bench_server("bench", DISPATCH_GEOM, BATCH, true);
        let (mut latencies, qps) = closed_loop(&server, "bench", BATCH, 250);
        let window = server.stats().e2e_window(server.now_us());
        let measured_p50 = percentile(&mut latencies, 50.0);
        let measured_p99 = percentile(&mut latencies, 99.0);
        record_family(
            &mut h,
            &format!("serve/batch{BATCH}"),
            BATCH,
            latencies,
            qps,
        );
        for (suffix, q, measured_ns) in [("p50", 0.5, measured_p50), ("p99", 0.99, measured_p99)] {
            let win_ns = window.quantile(q) * 1000.0; // window records µs
            h.record(Sample {
                name: format!("serve/batch{BATCH}_win_{suffix}"),
                wall_ns: win_ns as u128,
                iters: window.count as u32,
                threads: BATCH,
                allocs: 0,
            });
            assert_window_agreement(suffix, win_ns, measured_ns);
        }
        server.shutdown();
        qps
    };

    let speedup = batch_qps / single_qps;
    h.record(Sample {
        name: "serve/speedup_x1000".to_string(),
        wall_ns: (speedup * 1000.0) as u128,
        iters: (BATCH * 250) as u32,
        threads: BATCH,
        allocs: 0,
    });
    report::kv(
        &format!("batch-{BATCH} speedup over single-query"),
        format!("{speedup:.2}x"),
    );

    // Open-loop at ~half of batched capacity: queueing delay visible,
    // but the server is not saturated.
    {
        let server = bench_server("bench", DISPATCH_GEOM, BATCH, true);
        let (latencies, qps) = open_loop(&server, "bench", batch_qps * 0.5, 4000);
        record_family(&mut h, "serve/open_loop", 2, latencies, qps);
        server.shutdown();
    }

    // Paper-scale geometry for transparency: dense-math-bound, so the
    // coalescing win is small — report it rather than hide it.
    {
        let paper = PredictorConfig::default();
        let server = bench_server("bench", paper, 1, true);
        let (latencies, qps) = closed_loop(&server, "bench", 1, 300);
        record_family(&mut h, "serve/paper_single_query", 1, latencies, qps);
        server.shutdown();
        let server = bench_server("bench", paper, BATCH, true);
        let (latencies, batch_qps) = closed_loop(&server, "bench", BATCH, 25);
        record_family(
            &mut h,
            &format!("serve/paper_batch{BATCH}"),
            BATCH,
            latencies,
            batch_qps,
        );
        server.shutdown();
        report::kv("paper-geometry speedup", format!("{:.2}x", batch_qps / qps));

        // A/B: the same paper-geometry batch-32 load through the
        // layer-stack forward (`plan: false`), recorded under the
        // `…@stack` suffix — PR 6's `…@scalar` convention. The headline
        // `serve/plan_speedup_x1000` row is plan qps over stack qps.
        let server = bench_server("bench", paper, BATCH, false);
        let (latencies, stack_qps) = closed_loop(&server, "bench", BATCH, 25);
        record_family(
            &mut h,
            &format!("serve/paper_batch{BATCH}@stack"),
            BATCH,
            latencies,
            stack_qps,
        );
        server.shutdown();
        let plan_speedup = batch_qps / stack_qps;
        h.record(Sample {
            name: "serve/plan_speedup_x1000".to_string(),
            wall_ns: (plan_speedup * 1000.0) as u128,
            iters: (BATCH * 25) as u32,
            threads: BATCH,
            allocs: 0,
        });
        report::kv(
            "paper-geometry plan vs layer-stack",
            format!("{plan_speedup:.2}x"),
        );
    }

    // Per-round exploration-session latency over the same paper
    // geometry — the online-DSE serving path the session layer adds.
    {
        let (latencies, rounds_per_sec) = session_load(8);
        record_family(&mut h, "serve/session_round", 1, latencies, rounds_per_sec);
    }

    let path = Path::new("BENCH_results.json");
    // Owned prefixes cover every row family this mode produces — but
    // not `serve/shards…`, which `--shards` owns, so the two modes
    // merge into one file without clobbering each other.
    h.write_json_merged(
        path,
        &[
            "serve/raw_",
            "serve/single_query",
            "serve/batch",
            "serve/speedup",
            "serve/open_loop",
            "serve/paper_",
            "serve/plan_",
            "serve/session_",
        ],
    )
    .expect("write BENCH_results.json");
    report::kv("wrote", path.display());
}

/// Soak driver for the CI introspection smoke step: serves a continuous
/// closed-loop load for roughly `secs` seconds so an external
/// `metadse-introspect` client can poll the endpoint against live
/// traffic. The endpoint itself comes from `Server::start` honouring
/// `METADSE_INTROSPECT` — this binary never touches the socket, which
/// is exactly the point: the exposition CI captures is produced across
/// process boundaries.
fn introspect_soak(secs: u64) {
    report::banner("MetaDSE serving introspection soak");
    report::kv("duration (s)", secs);
    let server = bench_server("bench", DISPATCH_GEOM, BATCH, true);
    let deadline = Instant::now() + Duration::from_secs(secs);
    let mut served = 0usize;
    while Instant::now() < deadline {
        let (latencies, _) = closed_loop(&server, "bench", 8, 100);
        served += latencies.len();
    }
    let window = server.stats().e2e_window(server.now_us());
    report::kv("requests served", served);
    report::kv("window p99 (us)", format!("{:.0}", window.quantile(0.99)));
    report::kv("final health", server.health());
    server.shutdown();
}

/// CI regression gate on closed-loop batch-32 p99 rows: best-of-three
/// against the committed baseline, with a generous ratio (tail latency
/// on shared runners is noisy) and an absolute floor — a p99 under the
/// floor passes outright, whatever the committed value was. Gates both
/// the dispatch-bound row and the paper-geometry plan-path row, so a
/// plan-execution regression trips CI even though the dispatch row is
/// queue-dominated.
fn smoke() {
    report::banner("MetaDSE serving smoke check");
    let committed = std::fs::read_to_string("BENCH_results.json")
        .expect("smoke mode needs the committed BENCH_results.json baseline");
    smoke_gate(&committed, SMOKE_ROW, DISPATCH_GEOM, 60, 2_000_000);
    smoke_gate(
        &committed,
        PLAN_SMOKE_ROW,
        PredictorConfig::default(),
        12,
        // Paper-geometry forwards are dense-math-bound and an order of
        // magnitude slower per batch; the outright-pass floor scales
        // with them.
        20_000_000,
    );
    // Session rounds batch 16+ paper-geometry forwards per step; the
    // floor scales with a full round, not a single forward.
    gate_p99(&committed, SESSION_SMOKE_ROW, 100_000_000, || {
        let (mut latencies, _) = session_load(4);
        percentile(&mut latencies, 99.0)
    });
    #[cfg(unix)]
    sharded::smoke_gate(&committed);
}

/// One best-of-three p99 gate for `row` at `geom` (plan path on).
fn smoke_gate(
    committed: &str,
    row: &str,
    geom: PredictorConfig,
    per_client: usize,
    abs_floor_ns: u64,
) {
    gate_p99(committed, row, abs_floor_ns, || {
        let server = bench_server("bench", geom, BATCH, true);
        let (mut latencies, _) = closed_loop(&server, "bench", BATCH, per_client);
        server.shutdown();
        percentile(&mut latencies, 99.0)
    });
}

/// Best-of-three p99 gate: each attempt measures a fresh p99 via
/// `measure`; the run passes if any attempt lands within `MAX_RATIO`
/// of the committed baseline or under the absolute floor.
fn gate_p99(committed: &str, row: &str, abs_floor_ns: u64, measure: impl Fn() -> u64) {
    const MAX_RATIO: f64 = 2.5;
    const ATTEMPTS: usize = 3;

    let baseline = committed_wall_ns(committed, row)
        .unwrap_or_else(|| panic!("baseline row {row} missing from BENCH_results.json"));
    report::kv(&format!("{row} baseline"), human_ns(baseline));

    let mut best = u64::MAX;
    for attempt in 1..=ATTEMPTS {
        let p99 = measure();
        let ratio = p99 as f64 / baseline as f64;
        report::kv(
            &format!("{row} attempt {attempt}/{ATTEMPTS} p99"),
            format!("{} ({ratio:.3}x)", human_ns(u128::from(p99))),
        );
        best = best.min(p99);
        if p99 <= abs_floor_ns || ratio <= MAX_RATIO {
            report::line(format!(
                "OK: {row} within {MAX_RATIO}x of baseline (or under {})",
                human_ns(u128::from(abs_floor_ns))
            ));
            return;
        }
    }
    report::line(format!(
        "FAIL: {row} regressed {:.2}x vs committed baseline \
         (limit {MAX_RATIO}x, best of {ATTEMPTS} attempts)",
        best as f64 / baseline as f64
    ));
    std::process::exit(1);
}

/// Reads `wall_ns` for one row of a committed `BENCH_results.json`
/// (one object per line, as written by the harness).
fn committed_wall_ns(json: &str, name: &str) -> Option<u128> {
    let needle = format!("\"name\": \"{name}\"");
    let line = json.lines().find(|l| l.contains(&needle))?;
    let field = line.split("\"wall_ns\": ").nth(1)?;
    let digits: String = field.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Multi-process shard-scaling rows: stands up real worker-process
/// fleets (this binary re-executed with `--shard-worker`, supervised)
/// behind a front door and measures closed-loop aggregate QPS per fleet
/// size. Rows `serve/shardsN_qps` store *requests per second* in the
/// `wall_ns` field (a value row, like `serve/speedup_x1000`), and
/// `serve/shard_scaling_x1000` stores the 4-shard/1-shard ratio ×1000.
///
/// The workload is the **paper geometry** (dense-math-bound, ~170 µs a
/// forward), so per-request compute dominates the two socket hops and
/// scaling across worker processes is physically possible. On a
/// single-core container the sizes tie at ~1× — the committed rows say
/// whatever the measuring machine could honestly do, and the CI gate
/// only enforces the ≥ 2.5× 4-shard ratio on runners with ≥ 4 CPUs.
#[cfg(unix)]
mod sharded {
    use std::collections::BTreeMap;
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Instant;

    use metadse::predictor::{PredictorConfig, TransformerPredictor};
    use metadse::ServablePredictor;
    use metadse_bench::fleet::{launch, Fleet, FleetOptions};
    use metadse_bench::report;
    use metadse_bench::serving::request_row;
    use metadse_bench::timing::{Harness, Sample};
    use metadse_serve::{FrontClient, ModelRegistry};

    /// Row families owned by `--shards` mode in `BENCH_results.json`.
    const ROW_PREFIXES: &[&str] = &["serve/shards", "serve/shard_scaling"];

    /// The fleet sizes the committed rows cover.
    const SIZES: [usize; 3] = [1, 2, 4];

    /// Mixed tenants so every shard of a 4-way fleet owns work.
    const TENANTS: [&str; 8] = [
        "astar", "bzip2", "gcc", "leela", "mcf", "omnetpp", "sjeng", "xalan",
    ];

    /// Publishes the tenant registry and launches a `shards`-worker
    /// fleet with a front door; returns it with its scratch dir.
    fn fleet_up(shards: usize, tag: &str) -> (Fleet, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "metadse-shardbench-{tag}-{shards}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let root = dir.join("models");
        let registry = ModelRegistry::new(&root, 2);
        for (i, name) in TENANTS.iter().enumerate() {
            let servable = ServablePredictor::capture(
                &TransformerPredictor::new(PredictorConfig::default(), 300 + i as u64),
                None,
                "ipc",
            );
            registry.publish(name, &servable).expect("publish tenant");
        }
        let mut opts = FleetOptions::new(&dir, &root, shards);
        opts.max_batch = 8;
        opts.max_wait_us = 100;
        (launch(&opts).expect("fleet launch"), dir)
    }

    /// Closed-loop load through the front: `clients` threads, one
    /// request in flight each, `per_client` requests per thread over
    /// the mixed tenants. Returns aggregate QPS.
    fn closed_loop_front(fleet: &Fleet, clients: usize, per_client: usize) -> f64 {
        let arity = PredictorConfig::default().num_params;
        // Warm every shard's plan cache before the clock starts.
        let mut warm = FrontClient::connect(fleet.socket()).expect("front connect");
        for (i, name) in TENANTS.iter().enumerate() {
            warm.predict(name, &request_row(i, arity), None)
                .expect("warmup predict");
        }
        let done = AtomicU64::new(0);
        let start = Instant::now();
        std::thread::scope(|s| {
            for c in 0..clients {
                let done = &done;
                s.spawn(move || {
                    let mut client = FrontClient::connect(fleet.socket()).expect("front connect");
                    for i in 0..per_client {
                        let request = c * per_client + i;
                        let tenant = TENANTS[request % TENANTS.len()];
                        let config = request_row(request, arity);
                        // No faults are injected here, but transient
                        // shed/unavailable outcomes still deserve a
                        // bounded retry rather than a dead sample.
                        let mut attempts = 0;
                        loop {
                            match client.predict(tenant, &config, None) {
                                Ok(_) => break,
                                Err(e) if e.retryable() && attempts < 50 => {
                                    attempts += 1;
                                    client = FrontClient::connect(fleet.socket())
                                        .expect("front reconnect");
                                }
                                Err(e) => panic!("shard bench request failed: {e}"),
                            }
                        }
                        done.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        done.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64()
    }

    /// One measured fleet size → QPS (the fleet is torn down after).
    fn measure(shards: usize, tag: &str, per_client: usize) -> f64 {
        let (fleet, dir) = fleet_up(shards, tag);
        let clients = (4 * shards).min(16);
        let qps = closed_loop_front(&fleet, clients, per_client);
        fleet.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
        report::kv(&format!("{shards} shard(s) qps"), format!("{qps:.0}"));
        qps
    }

    /// The full `--shards` report: QPS rows for each fleet size plus
    /// the 4-vs-1 scaling ratio, merged into `BENCH_results.json`.
    pub fn full_report() {
        report::banner("MetaDSE sharded serving scaling benchmark");
        report::kv(
            "hardware threads",
            metadse_parallel::available_parallelism(),
        );
        let mut h = Harness::new();
        let mut qps_by_size: BTreeMap<usize, f64> = BTreeMap::new();
        for &shards in &SIZES {
            let qps = measure(shards, "full", 400);
            let clients = (4 * shards).min(16);
            h.record(Sample {
                name: format!("serve/shards{shards}_qps"),
                wall_ns: qps as u128,
                iters: (clients * 400) as u32,
                threads: clients,
                allocs: 0,
            });
            qps_by_size.insert(shards, qps);
        }
        if let (Some(q1), Some(q4)) = (qps_by_size.get(&1), qps_by_size.get(&4)) {
            let ratio = q4 / q1;
            h.record(Sample {
                name: "serve/shard_scaling_x1000".to_string(),
                wall_ns: (ratio * 1000.0) as u128,
                iters: 1,
                threads: 16,
                allocs: 0,
            });
            report::kv("4-shard scaling over 1 shard", format!("{ratio:.2}x"));
        }
        let path = Path::new("BENCH_results.json");
        h.write_json_merged(path, ROW_PREFIXES)
            .expect("write BENCH_results.json");
        report::kv("wrote", path.display());
    }

    /// The CI gate on the shard rows: the committed baseline must carry
    /// them, and on runners with ≥ 4 CPUs a live 4-shard fleet must
    /// beat a live 1-shard fleet by ≥ 2.5× (best of three — process
    /// scheduling on shared runners is noisy). On smaller machines the
    /// ratio is physically out of reach, so only row presence is
    /// enforced — and the skip is reported, never silent.
    pub fn smoke_gate(committed: &str) {
        const MIN_RATIO: f64 = 2.5;
        const ATTEMPTS: usize = 3;

        for row in ["serve/shards1_qps", "serve/shards4_qps"] {
            let qps = super::committed_wall_ns(committed, row)
                .unwrap_or_else(|| panic!("baseline row {row} missing from BENCH_results.json"));
            report::kv(&format!("{row} baseline"), format!("{qps} qps"));
        }
        let cores = metadse_parallel::available_parallelism();
        if cores < 4 {
            report::line(format!(
                "SKIP: shard-scaling ratio gate needs ≥ 4 CPUs (have {cores}); \
                 row presence verified"
            ));
            return;
        }
        let mut best = 0.0f64;
        for attempt in 1..=ATTEMPTS {
            let q1 = measure(1, &format!("smoke{attempt}"), 150);
            let q4 = measure(4, &format!("smoke{attempt}"), 150);
            let ratio = q4 / q1;
            report::kv(
                &format!("scaling attempt {attempt}/{ATTEMPTS}"),
                format!("{ratio:.2}x"),
            );
            best = best.max(ratio);
            if ratio >= MIN_RATIO {
                report::line(format!(
                    "OK: 4-shard fleet scales {ratio:.2}x (≥ {MIN_RATIO}x)"
                ));
                return;
            }
        }
        report::line(format!(
            "FAIL: 4-shard fleet only {best:.2}x over 1 shard (need ≥ {MIN_RATIO}x on {cores} CPUs)"
        ));
        std::process::exit(1);
    }
}

fn main() {
    #[cfg(unix)]
    if let Some(code) = metadse_serve::shard::run_worker_if_flagged() {
        std::process::exit(code);
    }
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
    } else if args.iter().any(|a| a == "--shards") {
        #[cfg(unix)]
        sharded::full_report();
        #[cfg(not(unix))]
        {
            eprintln!("serve_bench --shards needs unix sockets");
            std::process::exit(1);
        }
    } else if let Some(pos) = args.iter().position(|a| a == "--introspect-soak") {
        let secs = args.get(pos + 1).and_then(|s| s.parse().ok()).unwrap_or(10);
        introspect_soak(secs);
    } else {
        full_report();
    }
}
