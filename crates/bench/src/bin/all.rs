//! Runs every table/figure experiment in sequence (Fig. 2, Fig. 5,
//! Table II, Fig. 6, Table III), sharing one simulated environment.
//!
//! This is the one-command reproduction entry point:
//!
//! ```text
//! cargo run --release -p metadse-bench --bin all             # scaled
//! cargo run --release -p metadse-bench --bin all -- --paper  # paper-scale
//! ```

use std::time::Instant;

use metadse::experiment::{run_fig2, run_fig5, run_fig6, run_table2, run_table3, Environment};
use metadse_bench::{banner, f4, report, scale_from_args, write_csv};
use metadse_workloads::Metric;

fn main() {
    let scale = scale_from_args();
    banner(
        "full reproduction (Fig. 2, Fig. 5, Table II, Fig. 6, Table III)",
        &scale,
    );
    let t0 = Instant::now();
    let env = Environment::build(&scale, scale.seed);
    report::line(format!(
        "environment: {} workloads × {} design points  [{:?}]",
        env.datasets.len(),
        scale.samples_per_workload,
        t0.elapsed()
    ));

    // --- Fig. 2 ---
    let t = Instant::now();
    let fig2 = run_fig2(&env);
    let mut flat: Vec<f64> = Vec::new();
    for (i, row) in fig2.matrix.iter().enumerate() {
        for (j, &d) in row.iter().enumerate() {
            if i < j {
                flat.push(d);
            }
        }
    }
    flat.sort_by(f64::total_cmp);
    report::section("Fig. 2");
    report::line(format!(
        "{} workloads; pairwise W1 min {:.3} / median {:.3} / max {:.3}  [{:?}]",
        fig2.names.len(),
        flat[0],
        flat[flat.len() / 2],
        flat[flat.len() - 1],
        t.elapsed()
    ));

    // --- Fig. 5 ---
    let t = Instant::now();
    let fig5 = run_fig5(&env, &scale);
    let mut rows = vec![vec![
        "workload".into(),
        "TrEnDSE".into(),
        "TrEnDSE-Tx".into(),
        "w/o WAM".into(),
        "MetaDSE".into(),
    ]];
    for r in fig5.rows.iter().chain(std::iter::once(&fig5.geomean)) {
        rows.push(vec![
            r.workload.clone(),
            f4(r.trendse),
            f4(r.trendse_transformer),
            f4(r.metadse_no_wam),
            f4(r.metadse),
        ]);
    }
    report::section("Fig. 5");
    report::line(format!("IPC RMSE per test workload  [{:?}]", t.elapsed()));
    report::table(&rows);
    let _ = write_csv("fig5_ipc_rmse", &rows);
    report::line(format!(
        "MetaDSE vs TrEnDSE geomean: {:+.1}% (paper -44.3%); WAM: {:+.1}% (paper -27%)",
        (fig5.geomean.metadse / fig5.geomean.trendse - 1.0) * 100.0,
        (fig5.geomean.metadse / fig5.geomean.metadse_no_wam - 1.0) * 100.0
    ));

    // --- Table II ---
    let t = Instant::now();
    let table2 = run_table2(&env, &scale);
    let mut rows = vec![vec![
        "model".into(),
        "RMSE(IPC)".into(),
        "RMSE(Pow)".into(),
        "MAPE(IPC)".into(),
        "MAPE(Pow)".into(),
        "EV(IPC)".into(),
        "EV(Pow)".into(),
    ]];
    for model in ["RF", "GBRT", "TrEnDSE", "MetaDSE"] {
        let i = table2.cell(model, Metric::Ipc).unwrap().summary;
        let p = table2.cell(model, Metric::Power).unwrap().summary;
        rows.push(vec![
            model.into(),
            format!("{:.4}±{:.4}", i.rmse_mean, i.rmse_ci),
            format!("{:.4}±{:.4}", p.rmse_mean, p.rmse_ci),
            format!("{:.4}±{:.4}", i.mape_mean, i.mape_ci),
            format!("{:.4}±{:.4}", p.mape_mean, p.mape_ci),
            format!("{:.4}±{:.4}", i.ev_mean, i.ev_ci),
            format!("{:.4}±{:.4}", p.ev_mean, p.ev_ci),
        ]);
    }
    report::section("Table II");
    report::line(format!("overall results  [{:?}]", t.elapsed()));
    report::table(&rows);
    let _ = write_csv("table2_overall", &rows);

    // --- Table III ---
    let t = Instant::now();
    let ks = [5usize, 10, 20, 30, 40];
    let table3 = run_table3(&env, &scale, &ks);
    let mut header = vec!["model / K".to_string()];
    header.extend(ks.iter().map(|k| k.to_string()));
    let mut rows = vec![header];
    for row in &table3.rows {
        let mut r = vec![row.model.clone()];
        r.extend(row.rmse_by_k.iter().map(|(_, v)| f4(*v)));
        rows.push(r);
    }
    report::section("Table III");
    report::line(format!("downstream support sweep  [{:?}]", t.elapsed()));
    report::table(&rows);
    let _ = write_csv("table3_support_sweep", &rows);

    // --- Fig. 6 ---
    let t = Instant::now();
    let fig6 = run_fig6(&env, &scale, &[5, 10, 40]);
    let mut rows = vec![vec!["pretrain support".into(), "RMSE".into(), "EV".into()]];
    for p in &fig6.points {
        rows.push(vec![p.pretrain_support.to_string(), f4(p.rmse), f4(p.ev)]);
    }
    report::section("Fig. 6");
    report::line(format!("upstream support sweep  [{:?}]", t.elapsed()));
    report::table(&rows);
    let _ = write_csv("fig6_pretrain_sensitivity", &rows);

    report::kv("total wall time", format!("{:?}", t0.elapsed()));
}
