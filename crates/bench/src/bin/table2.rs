//! Regenerates paper Table II: RMSE, MAPE, and explained variance for RF,
//! GBRT, TrEnDSE, and MetaDSE on IPC and power prediction, averaged over
//! the five test workloads with 95% confidence half-widths.

use metadse::experiment::{run_table2, Environment};
use metadse_bench::{banner, report, scale_from_args, write_csv};
use metadse_workloads::Metric;

fn main() {
    let scale = scale_from_args();
    banner(
        "Table II — overall results on the five test datasets",
        &scale,
    );
    let env = Environment::build(&scale, scale.seed);
    let result = run_table2(&env, &scale);

    let mut rows = vec![vec![
        "model".to_string(),
        "RMSE(IPC)".to_string(),
        "RMSE(Power)".to_string(),
        "MAPE(IPC)".to_string(),
        "MAPE(Power)".to_string(),
        "EV(IPC)".to_string(),
        "EV(Power)".to_string(),
    ]];
    for model in ["RF", "GBRT", "TrEnDSE", "MetaDSE"] {
        let ipc = result
            .cell(model, Metric::Ipc)
            .expect("IPC cell present")
            .summary;
        let power = result
            .cell(model, Metric::Power)
            .expect("Power cell present")
            .summary;
        rows.push(vec![
            model.to_string(),
            format!("{:.4}±{:.4}", ipc.rmse_mean, ipc.rmse_ci),
            format!("{:.4}±{:.4}", power.rmse_mean, power.rmse_ci),
            format!("{:.4}±{:.4}", ipc.mape_mean, ipc.mape_ci),
            format!("{:.4}±{:.4}", power.mape_mean, power.mape_ci),
            format!("{:.4}±{:.4}", ipc.ev_mean, ipc.ev_ci),
            format!("{:.4}±{:.4}", power.ev_mean, power.ev_ci),
        ]);
    }
    report::table(&rows);
    report::line(format!(
        "note: power RMSE is in normalized units (labels scaled by 1/{:.3} W)",
        env.power_scale
    ));

    let meta = result.cell("MetaDSE", Metric::Ipc).unwrap().summary;
    let trendse = result.cell("TrEnDSE", Metric::Ipc).unwrap().summary;
    report::line(format!(
        "MetaDSE vs TrEnDSE on IPC RMSE: {:+.1}%",
        (meta.rmse_mean / trendse.rmse_mean - 1.0) * 100.0
    ));
    match write_csv("table2_overall", &rows) {
        Ok(p) => report::kv("wrote", p.display()),
        Err(e) => report::warn(format!("could not write CSV: {e}")),
    }
}
