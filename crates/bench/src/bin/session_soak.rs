//! Deterministic concurrency soak for multi-tenant exploration
//! sessions — the headline check of the session layer.
//!
//! For each concurrency level (default 1, 4, 16 driver threads) the
//! driver:
//!
//! 1. publishes a mixed-tenant registry (8 workloads at the full
//!    21-parameter design-space arity) into a fresh scratch dir;
//! 2. launches a real worker-process fleet (re-executions of this
//!    binary with `--shard-worker`) with `--session-dir` persistence,
//!    plus the front door;
//! 3. opens one exploration session per (tenant, seed) pair — the same
//!    fixed roster every wave — and drives propose → batched-predict →
//!    front-delta rounds through [`FrontClient`] session ops, **while a
//!    fault injector SIGKILLs a shard at guaranteed mid-soak progress
//!    points** (sessions resume from their `MDSESESS` checkpoints on
//!    the restarted worker);
//! 4. asserts, per wave:
//!    - every round's accounting law holds (`proposed == predicted +
//!      cache_hits + shed`);
//!    - hypervolume is monotone nondecreasing per session;
//!    - every live shard reports `session/duplicate_predictions_total
//!      0` — the exactly-once prediction law (predictions issued ==
//!      unique points proposed fleet-wide);
//! 5. asserts across waves: for a fixed spec the final Pareto front —
//!    rebuilt client-side from the per-round deltas alone — is
//!    **bit-identical** at every concurrency level, with and without
//!    mid-soak kills. Concurrency, cache-hit pattern, and crash-resume
//!    change the wall clock, never the bits.
//!
//! Per-tenant hypervolume-vs-wall-clock curves from the
//! highest-concurrency wave are merged into `BENCH_results.json` under
//! the `session/` row family (suppress with `--no-json`).
//!
//! ```text
//! session_soak                                  # 16 sessions × {1,4,16} threads × 2 shards
//! session_soak --sessions 16 --shards 2         # the CI session-soak job
//! session_soak --quick                          # seconds, for local iteration
//! session_soak --no-faults                      # no kills, pure concurrency sweep
//! ```

#[cfg(unix)]
mod soak {
    use std::path::Path;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::time::{Duration, Instant};

    use metadse::explorer::{apply_front_delta, canonical_front, FrontDelta, ParetoEntry};
    use metadse::predictor::{PredictorConfig, TransformerPredictor};
    use metadse::ServablePredictor;
    use metadse_bench::fleet::{launch, Fleet, FleetOptions};
    use metadse_bench::timing::{Harness, Sample};
    use metadse_bench::{render_table, report};
    use metadse_nn::format::fnv1a;
    use metadse_obs::introspect::query;
    use metadse_serve::shard::intro_socket;
    use metadse_serve::{ErrorCode, FrontClient, ModelRegistry, SessionSpec};

    /// Mixed-tenant workload names (SPEC-flavoured, like the paper's
    /// workload suite).
    const TENANTS: [&str; 8] = [
        "astar", "bzip2", "gcc", "leela", "mcf", "omnetpp", "sjeng", "xalan",
    ];

    /// Sessions explore the full design space, so the served models
    /// must accept 21-parameter encodings; everything else is sized for
    /// soak speed, not fidelity.
    const SESSION_GEOM: PredictorConfig = PredictorConfig {
        num_params: 21,
        d_model: 4,
        heads: 2,
        depth: 1,
        d_hidden: 8,
        head_hidden: 4,
    };

    pub struct Options {
        pub shards: usize,
        pub sessions: usize,
        pub concurrency: Vec<usize>,
        pub initial_samples: u32,
        pub refinement_rounds: u32,
        pub beam: u32,
        pub faults: bool,
        pub json: bool,
    }

    impl Default for Options {
        fn default() -> Options {
            Options {
                shards: 2,
                sessions: 16,
                concurrency: vec![1, 4, 16],
                initial_samples: 24,
                refinement_rounds: 3,
                beam: 3,
                faults: true,
                json: true,
            }
        }
    }

    pub fn parse_args(args: &[String]) -> Result<Options, String> {
        let mut opts = Options::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = |name: &str| -> Result<&String, String> {
                it.next().ok_or_else(|| format!("{name} needs a value"))
            };
            match arg.as_str() {
                "--shards" => {
                    opts.shards = value("--shards")?
                        .parse()
                        .map_err(|e| format!("--shards: {e}"))?;
                }
                "--sessions" => {
                    opts.sessions = value("--sessions")?
                        .parse()
                        .map_err(|e| format!("--sessions: {e}"))?;
                }
                "--concurrency" => {
                    opts.concurrency = value("--concurrency")?
                        .split(',')
                        .map(|s| s.trim().parse().map_err(|e| format!("--concurrency: {e}")))
                        .collect::<Result<_, _>>()?;
                }
                "--rounds" => {
                    opts.refinement_rounds = value("--rounds")?
                        .parse()
                        .map_err(|e| format!("--rounds: {e}"))?;
                }
                "--initial-samples" => {
                    opts.initial_samples = value("--initial-samples")?
                        .parse()
                        .map_err(|e| format!("--initial-samples: {e}"))?;
                }
                "--no-faults" => opts.faults = false,
                "--no-json" => opts.json = false,
                "--quick" => {
                    opts.sessions = 8;
                    opts.concurrency = vec![1, 8];
                    opts.initial_samples = 12;
                    opts.refinement_rounds = 2;
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        if opts.shards == 0 || opts.sessions == 0 {
            return Err("--shards and --sessions must be ≥ 1".to_string());
        }
        if opts.concurrency.is_empty() || opts.concurrency.contains(&0) {
            return Err("--concurrency needs a comma list of thread counts ≥ 1".to_string());
        }
        Ok(opts)
    }

    /// The fixed session roster: session `i` explores tenant
    /// `i % TENANTS.len()` with a seed that is a pure function of `i`.
    /// Every wave opens exactly these specs, so the final fronts are
    /// comparable bit-for-bit across waves.
    fn roster_spec(opts: &Options, i: usize) -> SessionSpec {
        SessionSpec {
            workload: TENANTS[i % TENANTS.len()].to_string(),
            seed: 0x5E55 + i as u64,
            initial_samples: opts.initial_samples,
            refinement_rounds: opts.refinement_rounds,
            beam: opts.beam,
            round_timeout_us: 0,
        }
    }

    /// FNV-1a over a canonical front's point indices and objective bit
    /// patterns — drifts iff any point, ordering, or f64 bit changes.
    fn front_digest(front: &[ParetoEntry]) -> u64 {
        let mut bytes = Vec::new();
        for e in front {
            for &i in e.point.indices() {
                bytes.extend_from_slice(&(i as u64).to_le_bytes());
            }
            bytes.extend_from_slice(&e.ipc.to_bits().to_le_bytes());
            bytes.extend_from_slice(&e.power.to_bits().to_le_bytes());
        }
        fnv1a(&bytes)
    }

    /// Per-wave accounting shared by the driver threads.
    #[derive(Default)]
    struct Outcomes {
        /// Rounds completed fleet-wide (the injector's progress clock).
        rounds: AtomicU64,
        reconnects: AtomicU64,
        reopens: AtomicU64,
        predicted: AtomicU64,
        cache_hits: AtomicU64,
        shed: AtomicU64,
    }

    /// One point on a tenant's hypervolume-vs-wall-clock curve.
    struct CurvePoint {
        tenant: &'static str,
        round: u64,
        elapsed: Duration,
        hypervolume: f64,
    }

    /// The per-session result of one wave.
    struct SessionOutcome {
        digest: u64,
        curve: Vec<CurvePoint>,
    }

    fn connect_retry(socket: &Path, outcomes: &Outcomes, deadline: Instant) -> FrontClient {
        loop {
            match FrontClient::connect(socket) {
                Ok(c) => {
                    outcomes.reconnects.fetch_add(1, Ordering::Relaxed);
                    return c;
                }
                Err(e) => {
                    assert!(Instant::now() < deadline, "reconnect budget exhausted: {e}");
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        }
    }

    /// Drives one session open → step… → close through the front,
    /// riding out kills: `Unavailable` reconnects and retries (a
    /// restarted shard resumes the session from its checkpoint and
    /// replays or re-executes the round deterministically), and
    /// `UnknownSession` — a kill before the first checkpoint — re-opens
    /// and restarts delta accumulation from round 1.
    fn drive_session(
        socket: &Path,
        spec: &SessionSpec,
        tenant_index: usize,
        outcomes: &Outcomes,
        wave_start: Instant,
    ) -> SessionOutcome {
        const BUDGET: Duration = Duration::from_secs(180);
        const BACKOFF: Duration = Duration::from_millis(2);
        let deadline = Instant::now() + BUDGET;
        let tenant = TENANTS[tenant_index % TENANTS.len()];
        let mut client = connect_retry(socket, outcomes, deadline);
        let open = |client: &mut FrontClient, outcomes: &Outcomes| loop {
            match client.open_session(spec) {
                Ok(info) => return info,
                Err(e) if e.retryable() => {
                    assert!(Instant::now() < deadline, "{tenant}: open budget exhausted");
                    if e.code == ErrorCode::Unavailable {
                        *client = connect_retry(socket, outcomes, deadline);
                    }
                    std::thread::sleep(BACKOFF);
                }
                Err(e) => panic!("{tenant}: terminal open outcome: {e}"),
            }
        };

        let mut info = open(&mut client, outcomes);
        let mut applied: Vec<ParetoEntry> = Vec::new();
        let mut curve = Vec::new();
        let mut prev_hv = 0.0;
        let mut round = info.rounds_done + 1;
        while round <= info.rounds_total {
            match client.step_session(&spec.workload, info.session_id, round) {
                Ok(report) => {
                    assert_eq!(
                        report.proposed,
                        report.predicted + report.cache_hits + report.shed,
                        "{tenant}: round {round} accounting law broke"
                    );
                    assert!(
                        report.hypervolume >= prev_hv,
                        "{tenant}: hypervolume regressed at round {round}"
                    );
                    prev_hv = report.hypervolume;
                    apply_front_delta(
                        &mut applied,
                        &FrontDelta {
                            added: report.added.clone(),
                            removed: report.removed.clone(),
                        },
                    );
                    curve.push(CurvePoint {
                        tenant,
                        round,
                        elapsed: wave_start.elapsed(),
                        hypervolume: report.hypervolume,
                    });
                    outcomes.rounds.fetch_add(1, Ordering::Relaxed);
                    outcomes
                        .predicted
                        .fetch_add(u64::from(report.predicted), Ordering::Relaxed);
                    outcomes
                        .cache_hits
                        .fetch_add(u64::from(report.cache_hits), Ordering::Relaxed);
                    outcomes
                        .shed
                        .fetch_add(u64::from(report.shed), Ordering::Relaxed);
                    round += 1;
                }
                Err(e) if e.code == ErrorCode::UnknownSession => {
                    // The shard died before this session's first
                    // checkpoint landed: start over. Re-execution is
                    // deterministic, so the deltas re-accumulate to
                    // identical bits.
                    assert!(
                        Instant::now() < deadline,
                        "{tenant}: reopen budget exhausted"
                    );
                    outcomes.reopens.fetch_add(1, Ordering::Relaxed);
                    info = open(&mut client, outcomes);
                    applied.clear();
                    curve.clear();
                    prev_hv = 0.0;
                    round = info.rounds_done + 1;
                }
                Err(e) if e.retryable() => {
                    assert!(
                        Instant::now() < deadline,
                        "{tenant}: step retry budget exhausted on {e}"
                    );
                    if e.code == ErrorCode::Unavailable {
                        client = connect_retry(socket, outcomes, deadline);
                    }
                    std::thread::sleep(BACKOFF);
                }
                Err(e) => panic!("{tenant}: terminal step outcome at round {round}: {e}"),
            }
        }
        // Best-effort close; a kill racing the close only leaves a
        // checkpoint behind, never wrong bits.
        let _ = client.close_session(&spec.workload, info.session_id);
        SessionOutcome {
            digest: front_digest(&canonical_front(applied)),
            curve,
        }
    }

    /// SIGKILLs a rotating shard when fleet-wide round progress crosses
    /// 1/3 and 2/3 of the wave's total — every kill is mid-soak by
    /// construction, and each restart is awaited so the next kill hits
    /// a serving shard.
    fn fault_injector(
        fleet: &Fleet,
        shard_count: usize,
        progress: &AtomicU64,
        total_rounds: u64,
        stop: &AtomicBool,
    ) -> u64 {
        let mut kills = 0u64;
        for (i, threshold) in [total_rounds / 3, (2 * total_rounds) / 3]
            .into_iter()
            .enumerate()
        {
            while progress.load(Ordering::Relaxed) < threshold.max(1) {
                if stop.load(Ordering::Acquire) {
                    return kills;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            let target = i % shard_count;
            if fleet.supervisor.kill(target) {
                kills += 1;
                if let Err(e) = fleet
                    .supervisor
                    .await_shard_ready(target, Duration::from_secs(30))
                {
                    report::warn(format!("shard {target} never came back: {e}"));
                    return kills;
                }
            }
        }
        kills
    }

    struct WaveReport {
        concurrency: usize,
        faults: bool,
        digests: Vec<u64>,
        curves: Vec<CurvePoint>,
        elapsed: Duration,
        kills: u64,
        restarts: u64,
        reopens: u64,
        reconnects: u64,
        predicted: u64,
        cache_hits: u64,
        shed: u64,
    }

    /// One wave: fresh fleet, the fixed session roster driven by
    /// `concurrency` threads, optional mid-soak kills, exactly-once
    /// metric check, teardown.
    fn run_wave(opts: &Options, concurrency: usize, faults: bool, seq: usize) -> WaveReport {
        let dir = std::env::temp_dir().join(format!(
            "metadse-sessionsoak-{seq}-c{concurrency}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let root = dir.join("models");
        let registry = ModelRegistry::new(&root, 4);
        for (i, name) in TENANTS.iter().enumerate() {
            // Same artifact seeds every wave → same fingerprints → the
            // fronts are functions of the spec alone.
            let servable = ServablePredictor::capture(
                &TransformerPredictor::new(SESSION_GEOM, 100 + i as u64),
                None,
                "ipc",
            );
            registry.publish(name, &servable).expect("publish tenant");
        }
        let mut fleet_opts = FleetOptions::new(&dir, &root, opts.shards);
        fleet_opts.session_dir = Some(dir.join("sessions"));
        let fleet = launch(&fleet_opts).expect("fleet launch");

        let outcomes = Outcomes::default();
        let stop = AtomicBool::new(false);
        let rounds_total = u64::from(opts.refinement_rounds) + 1;
        let total_rounds = rounds_total * opts.sessions as u64;
        let start = Instant::now();
        let mut kills = 0u64;
        let mut collected: Vec<(usize, SessionOutcome)> = Vec::with_capacity(opts.sessions);
        std::thread::scope(|s| {
            let injector = faults.then(|| {
                s.spawn(|| {
                    fault_injector(&fleet, opts.shards, &outcomes.rounds, total_rounds, &stop)
                })
            });
            let drivers: Vec<_> = (0..concurrency)
                .map(|t| {
                    let fleet = &fleet;
                    let outcomes = &outcomes;
                    s.spawn(move || {
                        let mut outs = Vec::new();
                        for i in (t..opts.sessions).step_by(concurrency) {
                            let spec = roster_spec(opts, i);
                            outs.push((
                                i,
                                drive_session(fleet.socket(), &spec, i, outcomes, start),
                            ));
                        }
                        outs
                    })
                })
                .collect();
            for handle in drivers {
                collected.extend(handle.join().expect("driver thread"));
            }
            stop.store(true, Ordering::Release);
            if let Some(handle) = injector {
                kills = handle.join().expect("fault injector thread");
            }
        });
        collected.sort_by_key(|(i, _)| *i);
        let elapsed = start.elapsed();
        let restarts = fleet.supervisor.restarts();

        // The exactly-once law, read off the live fleet: no shard ever
        // predicted the same (fingerprint, point) twice.
        for index in 0..opts.shards {
            let socket = metadse_serve::shard::shard_socket(&dir, index);
            let metrics = query(&intro_socket(&socket), "metrics").expect("shard metrics");
            assert!(
                metrics
                    .body
                    .contains("counter session/duplicate_predictions_total 0"),
                "shard {index}: duplicate predictions detected:\n{}",
                metrics.body
            );
        }
        if faults {
            assert!(kills > 0, "fault injector never fired");
            assert!(
                restarts >= kills,
                "{kills} kills but only {restarts} restarts"
            );
        }

        fleet.shutdown();
        let _ = std::fs::remove_dir_all(&dir);

        let mut digests = Vec::with_capacity(opts.sessions);
        let mut curves = Vec::new();
        assert_eq!(collected.len(), opts.sessions, "every session must finish");
        for (i, outcome) in collected {
            digests.push(outcome.digest);
            // One hv-vs-wall-clock curve per tenant: its first session.
            if i < TENANTS.len() {
                curves.extend(outcome.curve);
            }
        }
        WaveReport {
            concurrency,
            faults,
            digests,
            curves,
            elapsed,
            kills,
            restarts,
            reopens: outcomes.reopens.load(Ordering::Relaxed),
            reconnects: outcomes.reconnects.load(Ordering::Relaxed),
            predicted: outcomes.predicted.load(Ordering::Relaxed),
            cache_hits: outcomes.cache_hits.load(Ordering::Relaxed),
            shed: outcomes.shed.load(Ordering::Relaxed),
        }
    }

    pub fn run(opts: &Options) {
        report::banner("MetaDSE multi-tenant exploration session soak");
        report::kv("shards", opts.shards);
        report::kv("sessions", opts.sessions);
        report::kv("concurrency levels", format!("{:?}", opts.concurrency));
        report::kv("rounds per session", u64::from(opts.refinement_rounds) + 1);
        report::kv(
            "fault injection",
            if opts.faults {
                "mid-soak SIGKILL at 1/3 and 2/3 progress (concurrency > 1)".to_string()
            } else {
                "off".to_string()
            },
        );

        let waves: Vec<WaveReport> = opts
            .concurrency
            .iter()
            .enumerate()
            .map(|(seq, &concurrency)| {
                // The first wave is the serial reference: no faults, so
                // its digests are the ground truth the faulted waves
                // must hit bit-for-bit.
                let faults = opts.faults && seq > 0 && concurrency > 1;
                run_wave(opts, concurrency, faults, seq)
            })
            .collect();

        let mut rows = vec![[
            "concurrency",
            "faults",
            "wall_ms",
            "kills",
            "restarts",
            "reopens",
            "reconnects",
            "predicted",
            "cache_hits",
            "shed",
        ]
        .map(String::from)
        .to_vec()];
        for w in &waves {
            rows.push(vec![
                w.concurrency.to_string(),
                if w.faults { "on" } else { "off" }.to_string(),
                format!("{:.0}", w.elapsed.as_secs_f64() * 1000.0),
                w.kills.to_string(),
                w.restarts.to_string(),
                w.reopens.to_string(),
                w.reconnects.to_string(),
                w.predicted.to_string(),
                w.cache_hits.to_string(),
                w.shed.to_string(),
            ]);
        }
        report::line(render_table(&rows));

        // The determinism headline: every wave landed every session on
        // the serial reference's exact front bits.
        let reference = &waves[0];
        for wave in &waves[1..] {
            for (i, (got, want)) in wave.digests.iter().zip(&reference.digests).enumerate() {
                assert_eq!(
                    got,
                    want,
                    "session {i} ({}): concurrency {} front diverged from serial reference",
                    TENANTS[i % TENANTS.len()],
                    wave.concurrency
                );
            }
        }

        if opts.json {
            let busiest = waves.last().expect("at least one wave");
            let mut h = Harness::new();
            for point in &busiest.curves {
                h.record(Sample {
                    name: format!("session/{}_r{}_wall", point.tenant, point.round),
                    wall_ns: point.elapsed.as_nanos(),
                    iters: 1,
                    threads: busiest.concurrency,
                    allocs: 0,
                });
                h.record(Sample {
                    name: format!("session/{}_r{}_hv_x1e6", point.tenant, point.round),
                    wall_ns: (point.hypervolume * 1e6) as u128,
                    iters: 1,
                    threads: busiest.concurrency,
                    allocs: 0,
                });
            }
            let path = Path::new("BENCH_results.json");
            h.write_json_merged(path, &["session/"])
                .expect("write BENCH_results.json");
            report::kv("wrote", path.display());
        }

        report::line(format!(
            "OK: {} sessions × {} concurrency level(s) — fronts bit-identical to the \
             serial reference through kills, resumes, and cache sharing",
            opts.sessions,
            waves.len()
        ));
    }
}

fn main() {
    #[cfg(unix)]
    {
        if let Some(code) = metadse_serve::shard::run_worker_if_flagged() {
            std::process::exit(code);
        }
        let args: Vec<String> = std::env::args().skip(1).collect();
        match soak::parse_args(&args) {
            Ok(opts) => soak::run(&opts),
            Err(usage) => {
                eprintln!("session_soak: {usage}");
                std::process::exit(2);
            }
        }
    }
    #[cfg(not(unix))]
    {
        eprintln!("session_soak: unix sockets unavailable on this platform; nothing to soak");
    }
}
