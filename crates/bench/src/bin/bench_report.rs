//! Machine-readable performance report.
//!
//! Times the workspace's hot paths — the packed matmul kernel against a
//! naive triple-loop reference, dataset simulation and the MAML/WAM task
//! fan-out at one and four worker threads — and writes every sample to
//! `BENCH_results.json` (name, mean wall-time in ns, iteration count,
//! configured thread count). The `t4` rows use the default
//! [`ParallelConfig`], which clamps to the machine and falls back to the
//! serial path below the work-size cutoff; the `t4_forced` rows disable
//! both guards so genuine thread-spawn overhead stays measured.
//!
//! ```text
//! cargo run --release -p metadse-bench --bin bench_report
//! ```

use metadse::maml::{pretrain, MamlConfig};
use metadse::predictor::{PredictorConfig, TransformerPredictor};
use metadse::wam::{self, AdaptConfig};
use metadse_bench::timing::{black_box, Harness};
use metadse_bench::{report, serving};
use metadse_nn::autograd::no_grad;
use metadse_nn::{backend, BackendKind, Tensor};
use metadse_parallel::ParallelConfig;
use metadse_sim::{DesignSpace, Simulator};
use metadse_workloads::{Dataset, Metric, SpecWorkload, Task, TaskSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The thread counts every fan-out family is benchmarked at: serial,
/// default four-thread config, and four threads with the serial-cutoff
/// and hardware-clamp guards disabled.
const THREAD_VARIANTS: [(&str, usize, bool); 3] =
    [("t1", 1, false), ("t4", 4, false), ("t4_forced", 4, true)];

/// Builds the [`ParallelConfig`] for one benchmark variant.
fn variant_config(threads: usize, forced: bool) -> ParallelConfig {
    let config = ParallelConfig::with_threads(threads);
    if forced {
        config.with_serial_cutoff(1).oversubscribed()
    } else {
        config
    }
}

/// Reference matmul: the textbook i-j-k triple loop the packed kernel is
/// measured against.
fn naive_matmul(a: &[f64], b: &[f64], m: usize, k: usize, n: usize) -> Vec<f64> {
    let mut out = vec![0.0; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for kk in 0..k {
                acc += a[i * k + kk] * b[kk * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// Deterministic operand pair for one matmul shape.
fn matmul_operands(m: usize, k: usize, n: usize) -> (Tensor, Tensor) {
    let mut rng = StdRng::seed_from_u64(0xbe);
    let a = metadse_nn::init::normal(&[m, k], 1.0, &mut rng);
    let b = metadse_nn::init::normal(&[k, n], 1.0, &mut rng);
    (a, b)
}

fn matmul_benches(h: &mut Harness) {
    // Transformer-predictor shapes: a 45-row query batch hitting the
    // d_model=32 projections and the 64-wide FFN.
    for (m, k, n) in [(45, 21, 32), (45, 32, 32), (45, 32, 64), (64, 64, 64)] {
        let (a, b) = matmul_operands(m, k, n);
        let a_data = a.to_vec();
        let b_data = b.to_vec();
        h.bench(&format!("matmul/naive/{m}x{k}x{n}"), || {
            black_box(naive_matmul(&a_data, &b_data, m, k, n))
        });
        h.bench(&format!("matmul/packed/{m}x{k}x{n}"), || {
            no_grad(|| black_box(a.matmul(&b)))
        });
    }
}

fn simulator_benches(h: &mut Harness) {
    let space = DesignSpace::new();
    let simulator = Simulator::new();
    let mut rng = StdRng::seed_from_u64(1);
    let points: Vec<_> = (0..32).map(|_| space.random_point(&mut rng)).collect();
    h.bench("sim/generate_at/32_points", || {
        black_box(Dataset::generate_at(
            &space,
            &simulator,
            SpecWorkload::Mcf605,
            &points,
        ))
    });
}

fn dataset_benches(h: &mut Harness) {
    let space = DesignSpace::new();
    let simulator = Simulator::new();
    for (label, threads, forced) in THREAD_VARIANTS {
        let parallel = variant_config(threads, forced);
        report::kv(
            &format!("dataset/generate/200pts/{label} effective workers"),
            parallel.workers_for(200),
        );
        h.bench_threads(&format!("dataset/generate/200pts/{label}"), threads, || {
            let mut rng = StdRng::seed_from_u64(7);
            black_box(Dataset::generate_with(
                &space,
                &simulator,
                SpecWorkload::Xalancbmk623,
                200,
                &mut rng,
                &parallel,
            ))
        });
    }
}

fn tiny_predictor() -> TransformerPredictor {
    TransformerPredictor::new(
        PredictorConfig {
            num_params: 21,
            d_model: 16,
            heads: 2,
            depth: 1,
            d_hidden: 32,
            head_hidden: 16,
        },
        9,
    )
}

/// The training datasets behind the `maml/pretrain_epoch` rows.
fn maml_train_data() -> Vec<Dataset> {
    let space = DesignSpace::new();
    let simulator = Simulator::new();
    let mut rng = StdRng::seed_from_u64(3);
    [SpecWorkload::Gcc602, SpecWorkload::Lbm619]
        .iter()
        .map(|&w| Dataset::generate(&space, &simulator, w, 60, &mut rng))
        .collect()
}

/// The reduced pretrain config behind the `maml/pretrain_epoch` rows.
fn maml_bench_config(threads: usize, forced: bool) -> MamlConfig {
    MamlConfig {
        epochs: 1,
        iterations_per_epoch: 2,
        inner_steps: 2,
        support_size: 5,
        query_size: 20,
        val_tasks: 0,
        parallel: variant_config(threads, forced),
        ..MamlConfig::paper()
    }
}

fn maml_benches(h: &mut Harness) {
    let train = maml_train_data();
    for (label, threads, forced) in THREAD_VARIANTS {
        let config = maml_bench_config(threads, forced);
        h.bench_threads(&format!("maml/pretrain_epoch/{label}"), threads, || {
            let model = tiny_predictor();
            black_box(pretrain(&model, &train, &[], Metric::Ipc, &config))
        });
    }
}

/// Re-times the headline kernels with the scalar backend forced
/// process-wide, so `BENCH_results.json` carries `…@scalar` rows next
/// to the canonical (default-backend) ones and the SIMD speedup is a
/// same-machine, same-run comparison. Skipped when the scalar backend
/// is already the active one (the canonical rows then *are* scalar).
fn backend_comparison_benches(h: &mut Harness) {
    let active = backend::kind();
    report::kv("tensor backend (canonical rows)", active.name());
    if active == BackendKind::Scalar {
        report::line("scalar backend already active; skipping @scalar rows");
        return;
    }
    backend::set_process_kind(BackendKind::Scalar);

    let (a, b) = matmul_operands(64, 64, 64);
    h.bench("matmul/packed/64x64x64@scalar", || {
        no_grad(|| black_box(a.matmul(&b)))
    });

    let train = maml_train_data();
    let config = maml_bench_config(1, false);
    h.bench_threads("maml/pretrain_epoch/t1@scalar", 1, || {
        let model = tiny_predictor();
        black_box(pretrain(&model, &train, &[], Metric::Ipc, &config))
    });

    backend::set_process_kind(active);
}

fn adapt_sweep_benches(h: &mut Harness) {
    let space = DesignSpace::new();
    let simulator = Simulator::new();
    let mut rng = StdRng::seed_from_u64(5);
    let ds = Dataset::generate(&space, &simulator, SpecWorkload::Nab644, 80, &mut rng);
    let sampler = TaskSampler::new(10, 30);
    let tasks: Vec<Task> = (0..8)
        .map(|_| sampler.sample(&ds, Metric::Ipc, &mut rng))
        .collect();
    let model = tiny_predictor();
    let adapt = AdaptConfig {
        steps: 5,
        ..AdaptConfig::default()
    };
    for (label, threads, forced) in THREAD_VARIANTS {
        let parallel = variant_config(threads, forced);
        report::kv(
            &format!("wam/adapt_sweep/8_tasks/{label} effective workers"),
            parallel.workers_for(tasks.len()),
        );
        h.bench_threads(&format!("wam/adapt_sweep/8_tasks/{label}"), threads, || {
            black_box(wam::adapt_sweep(&model, &tasks, None, &adapt, &parallel))
        });
    }
}

/// Reads `wall_ns` for one benchmark name out of a committed
/// `BENCH_results.json` (one `{"name": …, "wall_ns": …, …}` object per
/// line, as written by [`Harness::write_json`]).
fn committed_wall_ns(json: &str, name: &str) -> Option<u128> {
    let needle = format!("\"name\": \"{name}\"");
    let line = json.lines().find(|l| l.contains(&needle))?;
    let field = line.split("\"wall_ns\": ").nth(1)?;
    let digits: String = field.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Best-of-three regression gate on one committed row: re-measures
/// `measure()` and passes as soon as any attempt lands within
/// `max_ratio` of the committed baseline — a genuine regression slows
/// every attempt, while a scheduler hiccup or noisy neighbour only
/// spoils one. Returns `false` on a sustained regression; a missing
/// baseline row passes with a warning so the gate stays usable while a
/// new row family lands. Never rewrites the baseline file.
fn gate_row(
    committed: &str,
    name: &str,
    max_ratio: f64,
    mut measure: impl FnMut() -> u128,
) -> bool {
    const ATTEMPTS: usize = 3;
    let Some(baseline) = committed_wall_ns(committed, name) else {
        report::warn(format!(
            "no committed baseline row for {name}; gate skipped"
        ));
        return true;
    };
    report::kv(&format!("{name} baseline wall_ns"), baseline);
    let mut best = u128::MAX;
    for attempt in 1..=ATTEMPTS {
        let wall_ns = measure();
        let ratio = wall_ns as f64 / baseline as f64;
        report::kv(
            &format!("{name} attempt {attempt}/{ATTEMPTS}"),
            format!("{wall_ns} ns ({ratio:.3}x)"),
        );
        best = best.min(wall_ns);
        if ratio <= max_ratio {
            report::line(format!("OK: {name} within {max_ratio}x of baseline"));
            return true;
        }
    }
    report::line(format!(
        "FAIL: {name} regressed {:.2}x vs committed baseline \
         (limit {max_ratio}x, best of {ATTEMPTS} attempts)",
        best as f64 / baseline as f64
    ));
    false
}

/// CI regression gate: re-times the three headline hot-path rows —
/// `maml/pretrain_epoch/t1` (end-to-end training epoch),
/// `matmul/packed/64x64x64` (dense kernel) and `serve/raw_predict_b32`
/// (batched inference forward) — at a reduced measurement budget and
/// fails (exit 1) if any regressed against the committed
/// `BENCH_results.json` baseline. The micro-kernel rows get a looser
/// ratio than the epoch row: their absolute times are small enough that
/// CI-runner timing noise is proportionally larger.
fn smoke() {
    report::banner("MetaDSE benchmark smoke check");
    report::kv("tensor backend", backend::kind().name());
    let committed = std::fs::read_to_string("BENCH_results.json")
        .expect("smoke mode needs the committed BENCH_results.json baseline");

    let train = maml_train_data();
    let maml_config = maml_bench_config(1, false);
    let (a, b) = matmul_operands(64, 64, 64);
    let (serve_model, serve_batch) = serving::raw_predict_fixture();

    // Evaluate every gate (no short-circuit) so one failure still
    // reports the state of the others.
    let results = [
        gate_row(&committed, "maml/pretrain_epoch/t1", 1.25, || {
            let mut h = Harness::new().with_target_ms(150);
            let sample = h.bench_threads("maml/pretrain_epoch/t1", 1, || {
                let model = tiny_predictor();
                black_box(pretrain(&model, &train, &[], Metric::Ipc, &maml_config))
            });
            if metadse_bench::alloc_count::enabled() {
                report::kv("allocs per epoch", sample.allocs);
            }
            sample.wall_ns
        }),
        gate_row(&committed, "matmul/packed/64x64x64", 1.6, || {
            let mut h = Harness::new().with_target_ms(60);
            h.bench("matmul/packed/64x64x64", || {
                no_grad(|| black_box(a.matmul(&b)))
            })
            .wall_ns
        }),
        gate_row(&committed, "serve/raw_predict_b32", 1.6, || {
            let mut h = Harness::new().with_target_ms(60);
            h.bench("serve/raw_predict_b32", || {
                black_box(serve_model.predict(&serve_batch))
            })
            .wall_ns
        }),
    ];
    if results.iter().any(|ok| !ok) {
        std::process::exit(1);
    }
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    report::banner("MetaDSE hot-path benchmark report");
    report::kv(
        "hardware threads",
        metadse_parallel::available_parallelism(),
    );
    report::kv(
        "default serial cutoff",
        metadse_parallel::DEFAULT_SERIAL_CUTOFF,
    );

    let mut h = Harness::new().with_target_ms(300);
    matmul_benches(&mut h);
    simulator_benches(&mut h);
    dataset_benches(&mut h);
    maml_benches(&mut h);
    adapt_sweep_benches(&mut h);
    backend_comparison_benches(&mut h);

    let packed_vs_naive: Vec<String> = h
        .samples()
        .chunks(2)
        .take(4)
        .map(|pair| {
            format!(
                "{}: {:.2}x vs naive",
                pair[1].name,
                pair[0].wall_ns as f64 / pair[1].wall_ns.max(1) as f64
            )
        })
        .collect();
    for line in &packed_vs_naive {
        report::line(line);
    }

    let path = std::path::Path::new("BENCH_results.json");
    // Merge-write: `serve_bench` owns the `serve/` rows in the same file.
    h.write_json_merged(path, &["matmul/", "sim/", "dataset/", "maml/", "wam/"])
        .expect("write BENCH_results.json");
    report::kv("wrote", path.display());
}
