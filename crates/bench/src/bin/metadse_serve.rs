//! `metadse-serve` — one shard worker process of the sharded serving
//! fleet.
//!
//! Loads the slice of the registry its `--shard-index/--shard-count`
//! owns (see [`metadse::shard::shard_of`]), binds its data socket and
//! the `<socket>.intro` introspection endpoint, and serves until
//! killed. Normally spawned and supervised by `metadse-front` (or a
//! soak/bench driver), but runs standalone too:
//!
//! ```text
//! metadse-serve --socket /run/mdse/shard-0.sock --registry results/models \
//!               --shard-index 0 --shard-count 4
//! ```
//!
//! Flags: `--socket PATH --registry DIR [--shard-index I --shard-count N]
//! [--keep K] [--workers W] [--max-batch B] [--max-wait-us U]
//! [--queue-capacity Q]` — the same vector fleet launchers pass after
//! the `--shard-worker` reexec flag (accepted and ignored here, so the
//! same argv works against either entry point).

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some(metadse_serve::shard::WORKER_FLAG) {
        args.remove(0);
    }
    let opts = match metadse_serve::shard::parse_worker_args(&args) {
        Ok(opts) => opts,
        Err(usage) => {
            eprintln!("metadse-serve: {usage}");
            std::process::exit(2);
        }
    };
    #[cfg(unix)]
    match metadse_serve::shard::worker_main(opts) {
        Ok(never) => match never {},
        Err(e) => {
            eprintln!("metadse-serve: failed to start: {e}");
            std::process::exit(1);
        }
    }
    #[cfg(not(unix))]
    {
        let _ = opts;
        eprintln!("metadse-serve: unix sockets unavailable on this platform");
        std::process::exit(1);
    }
}
