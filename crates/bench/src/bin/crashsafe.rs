//! Kill-at-iteration crash-safety driver for the training checkpoint
//! subsystem: runs the fault-injection scenario suite end-to-end and
//! prints one PASS/FAIL line per scenario.
//!
//! Scenarios:
//!
//! * **kill+resume** — meta-training halted dead at iteration *k* (no
//!   final checkpoint, like a SIGKILL), resumed in a fresh
//!   model/optimizer/RNG, must reproduce the uninterrupted run's digest
//!   bit-for-bit, across several *k* and thread counts;
//! * **crash mid-write** — the process dies while a checkpoint file is
//!   in flight; the orphaned temp file must be ignored on resume;
//! * **torn write** — a write persists half its bytes but reports
//!   success; the checksum must catch the damaged generation and fall
//!   back to the previous one;
//! * **corrupt latest** — bytes of the newest generation are flipped on
//!   disk; resume must fall back and still match;
//! * **write errors** — a disk-full-style failure skips one checkpoint
//!   with a warning and must leave the training numerics untouched;
//! * **missing directory** — a nonexistent checkpoint directory is a
//!   fresh start, created on first save.
//!
//! Checkpoint directories live under `target/crashsafe/`; directories of
//! failed scenarios are left in place so CI can upload them as
//! artifacts. With `METADSE_DIGEST_FILE` set, the baseline digest is
//! recorded or compared, tying this driver into the workspace's
//! cross-build determinism protocol. `--quick` runs a reduced kill
//! matrix for smoke use.

use std::path::{Path, PathBuf};
use std::time::Instant;

use metadse::checkpoint::{CheckpointConfig, Checkpointer, FaultMode, FaultSpec};
use metadse::maml::{pretrain, MamlConfig, PretrainReport};
use metadse::predictor::{PredictorConfig, TransformerPredictor};
use metadse_bench::report;
use metadse_nn::layers::Module;
use metadse_parallel::ParallelConfig;
use metadse_workloads::{Dataset, Metric, Sample};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn synthetic_dataset(seed: u64, dim: usize, n: usize, shift: f64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let samples = (0..n)
        .map(|_| {
            let features: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect();
            let y: f64 = features
                .iter()
                .enumerate()
                .map(|(j, v)| v * ((j as f64 * 0.7 + shift).sin() + 1.0))
                .sum::<f64>()
                / dim as f64;
            Sample {
                features,
                ipc: y,
                power_w: y * 10.0,
            }
        })
        .collect();
    Dataset::from_samples(format!("synthetic-{seed}"), samples)
}

type RunResult = (PretrainReport, Vec<Vec<f64>>);

/// The determinism suite's reference problem — same datasets, same
/// `MamlConfig::tiny()` — so digests line up with the recorded ones.
fn run_reference(threads: usize, checkpoint: Option<CheckpointConfig>) -> RunResult {
    let dim = 6;
    let train: Vec<Dataset> = (0..2)
        .map(|i| synthetic_dataset(60 + i, dim, 80, i as f64 * 0.4))
        .collect();
    let val = vec![synthetic_dataset(70, dim, 80, 0.2)];
    let model = TransformerPredictor::new(
        PredictorConfig {
            num_params: dim,
            d_model: 8,
            heads: 2,
            depth: 1,
            d_hidden: 16,
            head_hidden: 8,
        },
        5,
    );
    let config = MamlConfig {
        parallel: ParallelConfig::with_threads(threads)
            .with_serial_cutoff(1)
            .oversubscribed(),
        checkpoint,
        ..MamlConfig::tiny()
    };
    let report = pretrain(&model, &train, &val, Metric::Ipc, &config);
    let params: Vec<Vec<f64>> = model.params().iter().map(|p| p.get().to_vec()).collect();
    (report, params)
}

fn run_digest(run: &RunResult) -> String {
    let mut hash: u64 = 0xcbf29ce484222325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100000001b3);
        }
    };
    eat(format!("{:?}", run.0).as_bytes());
    for p in &run.1 {
        for v in p {
            eat(&v.to_bits().to_le_bytes());
        }
    }
    format!("{hash:016x}")
}

fn scenario_dir(name: &str) -> PathBuf {
    let dir = Path::new("target").join("crashsafe").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn ckpt(dir: &Path) -> CheckpointConfig {
    CheckpointConfig {
        interval: 2,
        keep: 4,
        ..CheckpointConfig::new(dir)
    }
}

fn kill_and_resume(baseline: &RunResult, threads: usize, k: u64) -> Result<(), String> {
    let dir = scenario_dir(&format!("kill-t{threads}-k{k}"));
    let base = ckpt(&dir);
    let _partial = run_reference(
        threads,
        Some(CheckpointConfig {
            halt_after: Some(k),
            ..base.clone()
        }),
    );
    let resumed = run_reference(threads, Some(base));
    if &resumed != baseline {
        return Err(format!(
            "digest {} != baseline {}",
            run_digest(&resumed),
            run_digest(baseline)
        ));
    }
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

fn crash_mid_write(baseline: &RunResult) -> Result<(), String> {
    let dir = scenario_dir("crash-mid-write");
    let base = ckpt(&dir);
    // The process "dies" during a checkpoint write partway through the
    // run: every IO operation from the 30th on fails (the first
    // checkpoint, ~20 ops, lands; a later one is cut down mid-file),
    // and the halt kills the run shortly after.
    let _partial = run_reference(
        1,
        Some(CheckpointConfig {
            halt_after: Some(7),
            fault: Some(FaultSpec {
                fail_at: 30,
                mode: FaultMode::CrashMidWrite,
            }),
            ..base.clone()
        }),
    );
    let resumed = run_reference(1, Some(base));
    if &resumed != baseline {
        return Err("resume after mid-write crash diverged from baseline".into());
    }
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

fn torn_write(baseline: &RunResult) -> Result<(), String> {
    let dir = scenario_dir("torn-write");
    let base = ckpt(&dir);
    let _partial = run_reference(
        1,
        Some(CheckpointConfig {
            halt_after: Some(3),
            ..base.clone()
        }),
    );
    // Re-write the intact latest state through a tearing IO shim so the
    // newest generation on disk is silently damaged.
    let mut intact = Checkpointer::new(base.clone());
    let (state, generation) = intact
        .load_latest()
        .map_err(|e| e.to_string())?
        .ok_or("halted run left no checkpoint")?;
    let mut torn = Checkpointer::with_io(
        base.clone(),
        std::sync::Arc::new(metadse::checkpoint::FaultIo::new(FaultSpec {
            fail_at: 3,
            mode: FaultMode::TornWrite,
        })),
    );
    torn.save(&state).map_err(|e| e.to_string())?;
    let (_, loaded) = intact
        .load_latest()
        .map_err(|e| e.to_string())?
        .ok_or("all generations unreadable")?;
    if loaded != generation {
        return Err(format!(
            "expected fallback to generation {generation}, got {loaded}"
        ));
    }
    let resumed = run_reference(1, Some(base));
    if &resumed != baseline {
        return Err("resume after torn-write fallback diverged from baseline".into());
    }
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

fn corrupt_latest(baseline: &RunResult) -> Result<(), String> {
    let dir = scenario_dir("corrupt-latest");
    let base = ckpt(&dir);
    let _partial = run_reference(
        1,
        Some(CheckpointConfig {
            halt_after: Some(7),
            ..base.clone()
        }),
    );
    let mut generations: Vec<PathBuf> = std::fs::read_dir(&dir)
        .map_err(|e| e.to_string())?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "ckpt"))
        .collect();
    generations.sort();
    if generations.len() < 2 {
        return Err("need at least two generations for a fallback".into());
    }
    let latest = generations.last().unwrap();
    let mut bytes = std::fs::read(latest).map_err(|e| e.to_string())?;
    let mid = bytes.len() / 2;
    let end = (mid + 16).min(bytes.len());
    for b in &mut bytes[mid..end] {
        *b ^= 0xff;
    }
    std::fs::write(latest, &bytes).map_err(|e| e.to_string())?;

    let resumed = run_reference(1, Some(base));
    if &resumed != baseline {
        return Err("resume after corrupt-latest fallback diverged from baseline".into());
    }
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

fn write_errors(baseline: &RunResult) -> Result<(), String> {
    let dir = scenario_dir("write-errors");
    let faulty = run_reference(
        1,
        Some(CheckpointConfig {
            fault: Some(FaultSpec {
                fail_at: 0,
                mode: FaultMode::WriteError,
            }),
            ..ckpt(&dir)
        }),
    );
    if &faulty != baseline {
        return Err("a failed checkpoint write perturbed the numerics".into());
    }
    let mut cp = Checkpointer::new(CheckpointConfig::new(&dir));
    if cp.load_latest().map_err(|e| e.to_string())?.is_none() {
        return Err("no checkpoint landed after the write error".into());
    }
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

fn missing_directory(baseline: &RunResult) -> Result<(), String> {
    let dir = Path::new("target")
        .join("crashsafe")
        .join("missing")
        .join("nested");
    let _ = std::fs::remove_dir_all(dir.parent().unwrap());
    let run = run_reference(1, Some(CheckpointConfig::new(&dir)));
    if &run != baseline {
        return Err("fresh start from a missing directory diverged".into());
    }
    if !dir.is_dir() {
        return Err("first save did not create the directory".into());
    }
    std::fs::remove_dir_all(dir.parent().unwrap()).ok();
    Ok(())
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    report::banner("crash-safety scenario suite");

    let t0 = Instant::now();
    let baseline = run_reference(1, None);
    let digest = run_digest(&baseline);
    report::line(format!("baseline digest {digest} [{:?}]", t0.elapsed()));
    if let Ok(path) = std::env::var("METADSE_DIGEST_FILE") {
        // Per-backend digest pin, mirroring the core test suites: scalar
        // keeps the unsuffixed file, other backends use `<path>.<backend>`.
        let path = match metadse_nn::backend::kind() {
            metadse_nn::BackendKind::Scalar => path,
            kind => format!("{path}.{}", kind.name()),
        };
        match std::fs::read_to_string(&path) {
            Ok(previous) if !previous.trim().is_empty() => {
                if previous.trim() != digest {
                    report::warn(format!(
                        "baseline digest diverged from the one recorded in {path}"
                    ));
                    std::process::exit(1);
                }
            }
            // Atomic record (temp + rename): the file may be shared with
            // concurrently running test binaries.
            _ => metadse_nn::format::atomic_write(&path, digest.as_bytes())
                .unwrap_or_else(|e| panic!("could not record digest in {path}: {e}")),
        }
    }

    // MamlConfig::tiny() runs 12 meta-iterations; with interval 2 these
    // kill points exercise a mid-epoch resume with a partial-epoch
    // accumulator (k=3), an epoch-boundary resume (k=7), and a replay
    // that crosses the meta-validation step — per thread count.
    let kill_matrix: Vec<(usize, u64)> = if quick {
        vec![(1, 3)]
    } else {
        vec![(1, 3), (1, 7), (4, 3), (4, 7)]
    };

    type Scenario = Box<dyn Fn(&RunResult) -> Result<(), String>>;
    let mut scenarios: Vec<(String, Scenario)> = Vec::new();
    for (threads, k) in kill_matrix {
        scenarios.push((
            format!("kill+resume (threads={threads}, k={k})"),
            Box::new(move |b: &RunResult| kill_and_resume(b, threads, k)),
        ));
    }
    scenarios.push(("crash mid-write".into(), Box::new(crash_mid_write)));
    scenarios.push(("torn write fallback".into(), Box::new(torn_write)));
    scenarios.push(("corrupt latest generation".into(), Box::new(corrupt_latest)));
    scenarios.push(("write-error degradation".into(), Box::new(write_errors)));
    scenarios.push(("missing directory".into(), Box::new(missing_directory)));

    let mut failures = 0usize;
    for (name, scenario) in &scenarios {
        let t = Instant::now();
        match scenario(&baseline) {
            Ok(()) => report::line(format!("PASS {name} [{:?}]", t.elapsed())),
            Err(why) => {
                failures += 1;
                report::warn(format!("FAIL {name}: {why} [{:?}]", t.elapsed()));
            }
        }
    }

    if failures > 0 {
        report::warn(format!(
            "{failures}/{} crash-safety scenarios failed; checkpoint dirs kept under target/crashsafe/",
            scenarios.len()
        ));
        std::process::exit(1);
    }
    report::line(format!(
        "all {} crash-safety scenarios passed [{:?}]",
        scenarios.len(),
        t0.elapsed()
    ));
}
