//! `metadse-introspect` — command-line client for a running server's
//! introspection endpoint (unix socket, length-prefixed frames; see
//! `metadse_obs::introspect` for the protocol and `metadse-serve`'s
//! `introspect` module for command semantics).
//!
//! ```text
//! metadse-introspect [--socket PATH] health
//! metadse-introspect [--socket PATH] ready   [--wait SECS]
//! metadse-introspect [--socket PATH] metrics
//! metadse-introspect [--socket PATH] trace ID
//! metadse-introspect [--socket PATH] check WINDOW_NAME [--wait SECS]
//! ```
//!
//! The socket defaults to `$METADSE_INTROSPECT`. `ready --wait` polls
//! until the server reports ready (CI's startup barrier); `check` polls
//! `metrics` until the named trailing-window histogram (e.g.
//! `serve/e2e_latency_us`) shows a nonzero count with positive p50/p99,
//! printing the matching line — the CI smoke step's liveness assertion.
//! Exit status: 0 on success, 1 on an `err` reply or failed check, 2 on
//! usage/transport errors.

#[cfg(unix)]
fn main() {
    std::process::exit(unix_main::run());
}

#[cfg(not(unix))]
fn main() {
    eprintln!("metadse-introspect: unix sockets unavailable on this platform");
    std::process::exit(2);
}

#[cfg(unix)]
mod unix_main {
    use std::path::PathBuf;
    use std::time::{Duration, Instant};

    use metadse_obs::introspect::{query, Response};

    struct Args {
        socket: PathBuf,
        command: String,
        operand: Option<String>,
        wait_secs: Option<u64>,
    }

    fn usage() -> i32 {
        eprintln!(
            "usage: metadse-introspect [--socket PATH] <health|ready|metrics> [--wait SECS]\n\
             \u{20}      metadse-introspect [--socket PATH] trace ID\n\
             \u{20}      metadse-introspect [--socket PATH] check WINDOW_NAME [--wait SECS]\n\
             socket defaults to $METADSE_INTROSPECT"
        );
        2
    }

    fn parse() -> Result<Args, i32> {
        let mut socket = std::env::var_os("METADSE_INTROSPECT").map(PathBuf::from);
        let mut wait_secs = None;
        let mut positional: Vec<String> = Vec::new();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--socket" => socket = Some(PathBuf::from(args.next().ok_or_else(usage)?)),
                "--wait" => {
                    wait_secs = Some(args.next().and_then(|s| s.parse().ok()).ok_or_else(usage)?);
                }
                "--help" | "-h" => return Err(usage()),
                _ => positional.push(arg),
            }
        }
        let Some(socket) = socket else {
            eprintln!("metadse-introspect: no socket (pass --socket or set METADSE_INTROSPECT)");
            return Err(2);
        };
        let mut positional = positional.into_iter();
        let Some(command) = positional.next() else {
            return Err(usage());
        };
        Ok(Args {
            socket,
            command,
            operand: positional.next(),
            wait_secs,
        })
    }

    /// Polls `probe` until it returns `Some(exit_code)` or the deadline
    /// passes; `probe(true)` marks the final attempt (print diagnostics).
    fn poll_until(wait_secs: Option<u64>, mut probe: impl FnMut(bool) -> Option<i32>) -> i32 {
        let deadline = Instant::now() + Duration::from_secs(wait_secs.unwrap_or(0));
        loop {
            let last = Instant::now() >= deadline;
            if let Some(code) = probe(last) {
                return code;
            }
            if last {
                return 1;
            }
            std::thread::sleep(Duration::from_millis(100));
        }
    }

    /// Extracts the value following `key` on `line`.
    fn field(line: &str, key: &str) -> Option<f64> {
        let mut tokens = line.split_whitespace();
        while let Some(tok) = tokens.next() {
            if tok == key {
                return tokens.next()?.parse().ok();
            }
        }
        None
    }

    fn print_reply(reply: &Response) -> i32 {
        if reply.ok {
            print!("{}", reply.body);
            if !reply.body.ends_with('\n') {
                println!();
            }
            0
        } else {
            eprintln!("err: {}", reply.body);
            1
        }
    }

    pub fn run() -> i32 {
        let args = match parse() {
            Ok(args) => args,
            Err(code) => return code,
        };
        match args.command.as_str() {
            "health" | "metrics" => match query(&args.socket, &args.command) {
                Ok(reply) => print_reply(&reply),
                Err(e) => {
                    eprintln!("metadse-introspect: {}: {e}", args.socket.display());
                    2
                }
            },
            "ready" => poll_until(args.wait_secs, |last| match query(&args.socket, "ready") {
                Ok(reply) if reply.ok => Some(print_reply(&reply)),
                Ok(reply) if last => Some(print_reply(&reply)),
                Err(e) if last => {
                    eprintln!("metadse-introspect: {}: {e}", args.socket.display());
                    Some(2)
                }
                _ => None,
            }),
            "trace" => {
                let Some(id) = args.operand else {
                    return usage();
                };
                match query(&args.socket, &format!("trace?id={id}")) {
                    Ok(reply) => print_reply(&reply),
                    Err(e) => {
                        eprintln!("metadse-introspect: {}: {e}", args.socket.display());
                        2
                    }
                }
            }
            "check" => {
                let Some(name) = args.operand else {
                    return usage();
                };
                let prefix = format!("window {name} ");
                poll_until(args.wait_secs, |last| {
                    let reply = match query(&args.socket, "metrics") {
                        Ok(reply) if reply.ok => reply,
                        Ok(reply) => {
                            if last {
                                eprintln!("err: {}", reply.body);
                            }
                            return last.then_some(1);
                        }
                        Err(e) => {
                            if last {
                                eprintln!("metadse-introspect: {}: {e}", args.socket.display());
                            }
                            return last.then_some(2);
                        }
                    };
                    let Some(line) = reply.body.lines().find(|l| l.starts_with(&prefix)) else {
                        if last {
                            eprintln!("check failed: no `window {name}` line in metrics");
                        }
                        return last.then_some(1);
                    };
                    let count = field(line, "count").unwrap_or(0.0);
                    let p50 = field(line, "p50").unwrap_or(0.0);
                    let p99 = field(line, "p99").unwrap_or(0.0);
                    if count > 0.0 && p50 > 0.0 && p99 > 0.0 {
                        println!("{line}");
                        return Some(0);
                    }
                    if last {
                        eprintln!("check failed: {name} window empty or zero quantiles ({line})");
                    }
                    last.then_some(1)
                })
            }
            _ => usage(),
        }
    }
}
