//! Regenerates paper Fig. 2: the Wasserstein-distance heatmap among
//! SPEC CPU 2017 workloads (motivation: workloads are dissimilar, so
//! similarity-based transfer is brittle).

use metadse::experiment::{run_fig2, Environment};
use metadse_bench::{banner, report, scale_from_args, write_csv};

fn main() {
    let scale = scale_from_args();
    banner("Fig. 2 — Wasserstein distances among workloads", &scale);
    let env = Environment::build(&scale, scale.seed);
    let result = run_fig2(&env);

    // Short names for column headers (strip the numeric prefix suffix).
    let short: Vec<String> = result
        .names
        .iter()
        .map(|n| {
            n.split('.')
                .nth(1)
                .unwrap_or(n)
                .trim_end_matches("_s")
                .to_string()
        })
        .collect();

    let mut rows = Vec::new();
    let mut header = vec!["workload".to_string()];
    header.extend(short.iter().cloned());
    rows.push(header);
    for (i, name) in short.iter().enumerate() {
        let mut row = vec![name.clone()];
        row.extend(result.matrix[i].iter().map(|d| format!("{d:.3}")));
        rows.push(row);
    }
    report::table(&rows);

    // The paper's headline observation: similarity is inconsistent.
    let mut flat: Vec<f64> = Vec::new();
    for (i, row) in result.matrix.iter().enumerate() {
        for (j, &d) in row.iter().enumerate() {
            if i < j {
                flat.push(d);
            }
        }
    }
    flat.sort_by(f64::total_cmp);
    report::line(format!(
        "pairwise distances: min {:.3}  median {:.3}  max {:.3}  (max/min ratio {:.1}x)",
        flat[0],
        flat[flat.len() / 2],
        flat[flat.len() - 1],
        flat[flat.len() - 1] / flat[0].max(1e-9)
    ));
    match write_csv("fig2_wasserstein", &rows) {
        Ok(p) => report::kv("wrote", p.display()),
        Err(e) => report::warn(format!("could not write CSV: {e}")),
    }
}
