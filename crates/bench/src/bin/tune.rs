//! Hyperparameter sweep for the MetaDSE pipeline (development tool, not a
//! paper experiment): fixes the meta-training recipe, then sweeps the
//! downstream adaptation budget and the WAM mask learning-rate multiplier
//! on shared evaluation tasks against the TrEnDSE reference.
//!
//! Run with `METADSE_CACHE=1` to reuse the pre-trained checkpoint across
//! invocations.

use std::time::Instant;

use metadse::experiment::{Environment, Scale};
use metadse::maml::MamlConfig;
use metadse::trendse::TrEnDse;
use metadse::wam::{adapt_and_predict, AdaptConfig};
use metadse::TaskScores;
use metadse_bench::{f4, report};
use metadse_workloads::{Metric, TaskSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut scale = Scale::scaled();
    scale.samples_per_workload = 300;
    let env = Environment::build(&scale, scale.seed);
    let metric = Metric::Ipc;
    let sampler = TaskSampler::new(scale.eval_support, scale.eval_query);

    // Shared evaluation tasks.
    let mut rng = StdRng::seed_from_u64(1234);
    let tasks: Vec<metadse_workloads::Task> = env
        .split
        .test
        .iter()
        .flat_map(|&w| {
            let ds = env.dataset(w);
            (0..10)
                .map(|_| sampler.sample(ds, metric, &mut rng))
                .collect::<Vec<_>>()
        })
        .collect();

    // TrEnDSE reference.
    let t0 = Instant::now();
    let trendse = TrEnDse::new(env.train_datasets(), metric, scale.trendse.clone());
    let mut s = TaskScores::new();
    for task in &tasks {
        let p = trendse.adapt_and_predict(&task.support_x, &task.support_y, &task.query_x);
        s.push(&task.query_y, &p);
    }
    report::line(format!(
        "TrEnDSE reference: RMSE {} [{:?}]",
        f4(s.summary().rmse_mean),
        t0.elapsed()
    ));

    // One meta-trained model (cacheable), many adaptation settings.
    let maml = MamlConfig {
        inner_lr: 0.02,
        epochs: 10,
        iterations_per_epoch: 40,
        val_tasks: 5,
        ..MamlConfig::paper()
    };
    let t0 = Instant::now();
    let (model, mask) = metadse::experiment::pretrain_metadse(&env, &scale, metric, &maml);
    report::line(format!(
        "pretrain ready in {:.1} min",
        t0.elapsed().as_secs_f64() / 60.0
    ));

    let mut rows = vec![vec![
        "adapt".to_string(),
        "no-WAM".to_string(),
        "WAM x1".to_string(),
        "WAM x4".to_string(),
        "WAM x10".to_string(),
    ]];
    for (lr, steps) in [(0.02, 20), (0.02, 40), (0.03, 30)] {
        let base = AdaptConfig {
            steps,
            lr,
            lr_min: lr / 50.0,
            mask_lr_multiplier: 1.0,
        };
        let mut s_plain = TaskScores::new();
        let mut s_m1 = TaskScores::new();
        let mut s_m4 = TaskScores::new();
        let mut s_m10 = TaskScores::new();
        for task in &tasks {
            let p = adapt_and_predict(&model, task, None, &base);
            s_plain.push(&task.query_y, &p);
            for (mult, scores) in [(1.0, &mut s_m1), (4.0, &mut s_m4), (10.0, &mut s_m10)] {
                let cfg = AdaptConfig {
                    mask_lr_multiplier: mult,
                    ..base.clone()
                };
                let p = adapt_and_predict(&model, task, Some(&mask), &cfg);
                scores.push(&task.query_y, &p);
            }
        }
        rows.push(vec![
            format!("lr={lr} s={steps}"),
            f4(s_plain.summary().rmse_mean),
            f4(s_m1.summary().rmse_mean),
            f4(s_m4.summary().rmse_mean),
            f4(s_m10.summary().rmse_mean),
        ]);
        report::table(&rows);
    }
    match metadse_bench::write_csv("tune", &rows) {
        Ok(path) => report::line(format!("wrote {}", path.display())),
        Err(e) => report::warn(format!("could not write tune.csv: {e}")),
    }
}
