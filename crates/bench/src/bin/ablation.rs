//! Ablation studies beyond the paper's tables: WAM mask density and
//! first- vs second-order MAML (see DESIGN.md §5).
//!
//! ```text
//! cargo run --release -p metadse-bench --bin ablation -- --quick
//! ```

use metadse::ablation::{run_order_ablation, run_wam_density_ablation};
use metadse::experiment::Environment;
use metadse_bench::{banner, f4, report, scale_from_args, write_csv};

fn main() {
    let scale = scale_from_args();
    banner("ablations — WAM density, meta-gradient order", &scale);
    let env = Environment::build(&scale, scale.seed);

    // WAM mask density sweep.
    let thresholds = [0.0, 0.1, 0.25, 0.5, 0.75];
    let density = run_wam_density_ablation(&env, &scale, &thresholds);
    let mut rows = vec![vec![
        "freq threshold".to_string(),
        "kept interactions".to_string(),
        "IPC RMSE".to_string(),
    ]];
    for p in &density {
        rows.push(vec![
            format!("{:.2}", p.frequency_threshold),
            format!("{:.0}%", p.kept_fraction * 100.0),
            f4(p.rmse),
        ]);
    }
    report::table(&rows);
    let _ = write_csv("ablation_wam_density", &rows);

    // First- vs second-order MAML.
    let order = run_order_ablation(&env, &scale);
    let rows = vec![
        vec![
            "meta-gradient".to_string(),
            "IPC RMSE".to_string(),
            "pretrain secs".to_string(),
        ],
        vec![
            "first-order (FOMAML)".to_string(),
            f4(order.first_order_rmse),
            format!("{:.1}", order.first_order_secs),
        ],
        vec![
            "second-order (full MAML)".to_string(),
            f4(order.second_order_rmse),
            format!("{:.1}", order.second_order_secs),
        ],
    ];
    report::table(&rows);
    report::line(format!(
        "second-order cost multiple: {:.2}x",
        order.second_order_secs / order.first_order_secs.max(1e-9)
    ));
    let _ = write_csv("ablation_maml_order", &rows);
}
