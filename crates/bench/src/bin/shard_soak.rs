//! Crash-restart soak for the sharded serving fleet — the headline
//! check of the multi-process front door.
//!
//! For each fleet size (default 1, 2, 4 shards) the driver:
//!
//! 1. publishes a mixed-tenant registry (8 workloads) and keeps an
//!    in-process reference predictor per tenant;
//! 2. launches real worker *processes* (re-executions of this binary
//!    with `--shard-worker`) under the supervisor, plus the front door;
//! 3. drives a closed-loop mixed-tenant load from several client
//!    threads **while a fault injector SIGKILLs a rotating shard**
//!    mid-load, waiting for the supervisor's restart to report ready
//!    before the next kill — every crash hits a *serving* shard;
//! 4. asserts, per request:
//!    - every completed response is **bit-identical** to the serial
//!      in-process `predict` for the same `(workload, config)` — two
//!      process hops and a batched forward change nothing;
//!    - no request is silently dropped: each attempt ends in a value or
//!      a *typed* retryable error (`Unavailable`/`Shed`/`Closed`) that
//!      is retried to completion — the accounting table must balance
//!      exactly (`issued == completed`, zero failures, zero mismatches).
//!
//! Fleet QPS is reported per size for eyeballing; the recorded
//! `serve/shardsN_qps` rows (and the CI scaling gate) belong to
//! `serve_bench --shards`. On a single-core container the sizes tie —
//! that is expected and honest; correctness is what this binary gates.
//!
//! ```text
//! shard_soak                                   # 36k requests × {1,2,4} shards
//! shard_soak --shards 2 --requests 20000       # the CI shard-soak job
//! shard_soak --quick                           # seconds, for local iteration
//! shard_soak --no-faults                       # load only, no fault injection
//! ```

#[cfg(unix)]
mod soak {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::time::{Duration, Instant};

    use metadse::predictor::TransformerPredictor;
    use metadse::ServablePredictor;
    use metadse_bench::fleet::{launch, Fleet, FleetOptions};
    use metadse_bench::serving::{request_row, DISPATCH_GEOM};
    use metadse_bench::{render_table, report};
    use metadse_serve::{ErrorCode, FrontClient, ModelRegistry};

    /// Mixed-tenant workload names (SPEC-flavoured, like the paper's
    /// workload suite).
    const TENANTS: [&str; 8] = [
        "astar", "bzip2", "gcc", "leela", "mcf", "omnetpp", "sjeng", "xalan",
    ];

    pub struct Options {
        pub shards: Vec<usize>,
        pub requests: usize,
        pub clients: usize,
        pub kill_every: Duration,
        pub faults: bool,
    }

    impl Default for Options {
        fn default() -> Options {
            Options {
                shards: vec![1, 2, 4],
                requests: 36_000,
                clients: 4,
                kill_every: Duration::from_millis(500),
                faults: true,
            }
        }
    }

    pub fn parse_args(args: &[String]) -> Result<Options, String> {
        let mut opts = Options::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = |name: &str| -> Result<&String, String> {
                it.next().ok_or_else(|| format!("{name} needs a value"))
            };
            match arg.as_str() {
                "--shards" => {
                    opts.shards = value("--shards")?
                        .split(',')
                        .map(|s| s.trim().parse().map_err(|e| format!("--shards: {e}")))
                        .collect::<Result<_, _>>()?;
                }
                "--requests" => {
                    opts.requests = value("--requests")?
                        .parse()
                        .map_err(|e| format!("--requests: {e}"))?;
                }
                "--clients" => {
                    opts.clients = value("--clients")?
                        .parse()
                        .map_err(|e| format!("--clients: {e}"))?;
                }
                "--kill-every-ms" => {
                    opts.kill_every = Duration::from_millis(
                        value("--kill-every-ms")?
                            .parse()
                            .map_err(|e| format!("--kill-every-ms: {e}"))?,
                    );
                }
                "--no-faults" => opts.faults = false,
                "--quick" => opts.requests = 3_000,
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        if opts.shards.is_empty() || opts.shards.contains(&0) {
            return Err("--shards needs a comma list of counts ≥ 1".to_string());
        }
        if opts.clients == 0 || opts.requests == 0 {
            return Err("--clients and --requests must be ≥ 1".to_string());
        }
        Ok(opts)
    }

    /// Per-run outcome accounting. Every request the load issues must
    /// end in exactly one of `ok` / `failed`; the retry counters record
    /// the typed, retryable detours taken along the way.
    #[derive(Default)]
    struct Outcomes {
        ok: AtomicU64,
        failed: AtomicU64,
        mismatched: AtomicU64,
        retried_unavailable: AtomicU64,
        retried_shed: AtomicU64,
        retried_closed: AtomicU64,
        reconnects: AtomicU64,
    }

    /// One request driven to completion: retry typed-retryable outcomes
    /// (reconnecting on transport-tainted streams) until a value
    /// arrives or the per-request budget dies.
    #[allow(clippy::too_many_lines)]
    fn drive_request(
        socket: &std::path::Path,
        client: &mut Option<FrontClient>,
        workload: &str,
        config: &[f64],
        expected_bits: u64,
        outcomes: &Outcomes,
    ) {
        const BUDGET: Duration = Duration::from_secs(60);
        const BACKOFF: Duration = Duration::from_millis(2);
        let deadline = Instant::now() + BUDGET;
        loop {
            let Some(conn) = client.as_mut() else {
                match FrontClient::connect(socket) {
                    Ok(c) => {
                        outcomes.reconnects.fetch_add(1, Ordering::Relaxed);
                        *client = Some(c);
                    }
                    Err(_) if Instant::now() < deadline => {
                        std::thread::sleep(BACKOFF);
                    }
                    Err(e) => {
                        report::warn(format!("{workload}: reconnect budget exhausted: {e}"));
                        outcomes.failed.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
                continue;
            };
            match conn.predict(workload, config, None) {
                Ok(prediction) => {
                    if prediction.value.to_bits() != expected_bits {
                        report::warn(format!(
                            "{workload}: bits {:#018x} != serial predict {expected_bits:#018x}",
                            prediction.value.to_bits()
                        ));
                        outcomes.mismatched.fetch_add(1, Ordering::Relaxed);
                    }
                    outcomes.ok.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err(e) if e.retryable() && Instant::now() < deadline => {
                    match e.code {
                        ErrorCode::Unavailable => {
                            // Shard down or transport tainted — either
                            // way the stream may hold half a frame, so
                            // reconnect before retrying.
                            *client = None;
                            outcomes.retried_unavailable.fetch_add(1, Ordering::Relaxed);
                        }
                        ErrorCode::Closed => {
                            outcomes.retried_closed.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {
                            outcomes.retried_shed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    std::thread::sleep(BACKOFF);
                }
                Err(e) => {
                    report::warn(format!("{workload}: terminal outcome {e}"));
                    outcomes.failed.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
    }

    /// SIGKILLs a rotating shard every `kill_every`, pacing on the
    /// supervisor's restart barrier so each kill lands on a *serving*
    /// shard. Returns the kill count when `stop` rises.
    fn fault_injector(
        fleet: &Fleet,
        shard_count: usize,
        kill_every: Duration,
        stop: &AtomicBool,
    ) -> u64 {
        let mut kills = 0u64;
        let mut target = 0usize;
        while !stop.load(Ordering::Acquire) {
            // Sleep in small steps so teardown never waits a full period.
            let wake = Instant::now() + kill_every;
            while Instant::now() < wake {
                if stop.load(Ordering::Acquire) {
                    return kills;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            if fleet.supervisor.kill(target) {
                kills += 1;
                if let Err(e) = fleet
                    .supervisor
                    .await_shard_ready(target, Duration::from_secs(30))
                {
                    report::warn(format!("shard {target} never came back: {e}"));
                    return kills;
                }
            }
            target = (target + 1) % shard_count;
        }
        kills
    }

    struct RunReport {
        shards: usize,
        issued: u64,
        qps: f64,
        kills: u64,
        restarts: u64,
        retries: u64,
        reconnects: u64,
    }

    /// One fleet size: launch, soak, account, tear down.
    fn run_fleet(opts: &Options, shard_count: usize, seq: usize) -> RunReport {
        let dir = std::env::temp_dir().join(format!(
            "metadse-soak-{seq}-{}shards-{}",
            shard_count,
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let root = dir.join("models");
        let registry = ModelRegistry::new(&root, 4);
        // Sealed artifacts are Sync; the live predictors are not — each
        // client thread instantiates its own references from these.
        let servables: Vec<ServablePredictor> = TENANTS
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let servable = ServablePredictor::capture(
                    &TransformerPredictor::new(DISPATCH_GEOM, 100 + i as u64),
                    None,
                    "ipc",
                );
                registry.publish(name, &servable).expect("publish tenant");
                servable
            })
            .collect();

        let fleet = launch(&FleetOptions::new(&dir, &root, shard_count)).expect("fleet launch");
        let outcomes = Outcomes::default();
        let stop_faults = AtomicBool::new(false);
        let per_client = opts.requests / opts.clients;
        let issued = (per_client * opts.clients) as u64;
        let arity = DISPATCH_GEOM.num_params;

        let start = Instant::now();
        let mut kills = 0u64;
        std::thread::scope(|s| {
            let injector = (opts.faults && shard_count > 1).then(|| {
                s.spawn(|| fault_injector(&fleet, shard_count, opts.kill_every, &stop_faults))
            });
            let clients: Vec<_> = (0..opts.clients)
                .map(|c| {
                    let fleet = &fleet;
                    let outcomes = &outcomes;
                    let servables = &servables;
                    s.spawn(move || {
                        let references: Vec<TransformerPredictor> = servables
                            .iter()
                            .map(|s| s.instantiate().expect("reference model"))
                            .collect();
                        let mut client = None;
                        for i in 0..per_client {
                            let request = c * per_client + i;
                            let tenant = request % TENANTS.len();
                            let config = request_row(request, arity);
                            let expected =
                                references[tenant].predict(std::slice::from_ref(&config))[0];
                            drive_request(
                                fleet.socket(),
                                &mut client,
                                TENANTS[tenant],
                                &config,
                                expected.to_bits(),
                                outcomes,
                            );
                        }
                    })
                })
                .collect();
            for handle in clients {
                handle.join().expect("client thread");
            }
            stop_faults.store(true, Ordering::Release);
            if let Some(handle) = injector {
                kills = handle.join().expect("fault injector thread");
            }
        });
        let elapsed = start.elapsed();
        let restarts = fleet.supervisor.restarts();

        // The accounting must balance *exactly*: every issued request
        // completed with a value, every completed value matched the
        // serial predict bit for bit, and any crash the injector dealt
        // was healed by a supervisor restart.
        let ok = outcomes.ok.load(Ordering::Relaxed);
        let failed = outcomes.failed.load(Ordering::Relaxed);
        let mismatched = outcomes.mismatched.load(Ordering::Relaxed);
        assert_eq!(
            ok + failed,
            issued,
            "{shard_count} shard(s): a request vanished without an outcome"
        );
        assert_eq!(
            failed, 0,
            "{shard_count} shard(s): {failed} requests failed terminally"
        );
        assert_eq!(
            mismatched, 0,
            "{shard_count} shard(s): {mismatched} responses diverged from serial predict"
        );
        if opts.faults && shard_count > 1 {
            assert!(
                kills > 0,
                "{shard_count} shard(s): fault injector never fired"
            );
            assert!(
                restarts >= kills,
                "{shard_count} shard(s): {kills} kills but only {restarts} restarts"
            );
        }

        fleet.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
        RunReport {
            shards: shard_count,
            issued,
            qps: ok as f64 / elapsed.as_secs_f64(),
            kills,
            restarts,
            retries: outcomes.retried_unavailable.load(Ordering::Relaxed)
                + outcomes.retried_shed.load(Ordering::Relaxed)
                + outcomes.retried_closed.load(Ordering::Relaxed),
            reconnects: outcomes.reconnects.load(Ordering::Relaxed),
        }
    }

    pub fn run(opts: &Options) {
        report::banner("MetaDSE sharded serving crash-restart soak");
        report::kv("fleet sizes", format!("{:?}", opts.shards));
        report::kv("requests per fleet", opts.requests);
        report::kv("client threads", opts.clients);
        report::kv(
            "fault injection",
            if opts.faults {
                format!("SIGKILL every {:?} (fleets > 1 shard)", opts.kill_every)
            } else {
                "off".to_string()
            },
        );
        let reports: Vec<RunReport> = opts
            .shards
            .iter()
            .enumerate()
            .map(|(seq, &count)| run_fleet(opts, count, seq))
            .collect();

        let mut rows = vec![[
            "shards",
            "issued",
            "qps",
            "kills",
            "restarts",
            "retries",
            "reconnects",
        ]
        .map(String::from)
        .to_vec()];
        for r in &reports {
            rows.push(vec![
                r.shards.to_string(),
                r.issued.to_string(),
                format!("{:.0}", r.qps),
                r.kills.to_string(),
                r.restarts.to_string(),
                r.retries.to_string(),
                r.reconnects.to_string(),
            ]);
        }
        report::line(render_table(&rows));
        let total: u64 = reports.iter().map(|r| r.issued).sum();
        report::line(format!(
            "OK: {total} requests across {} fleet size(s) — zero drops, zero bit divergences",
            reports.len()
        ));
    }
}

fn main() {
    #[cfg(unix)]
    {
        if let Some(code) = metadse_serve::shard::run_worker_if_flagged() {
            std::process::exit(code);
        }
        let args: Vec<String> = std::env::args().skip(1).collect();
        match soak::parse_args(&args) {
            Ok(opts) => soak::run(&opts),
            Err(usage) => {
                eprintln!("shard_soak: {usage}");
                std::process::exit(2);
            }
        }
    }
    #[cfg(not(unix))]
    {
        eprintln!("shard_soak: unix sockets unavailable on this platform; nothing to soak");
    }
}
