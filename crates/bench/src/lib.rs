//! Shared harness utilities for the MetaDSE benchmark binaries.
//!
//! Every binary regenerates one table or figure of the paper (see
//! DESIGN.md §4) at a scale selected on the command line:
//!
//! ```text
//! cargo run --release -p metadse-bench --bin fig5            # scaled (default)
//! cargo run --release -p metadse-bench --bin fig5 -- --quick # seconds
//! cargo run --release -p metadse-bench --bin fig5 -- --paper # paper-scale
//! ```
//!
//! Results are printed as aligned text tables and mirrored as CSV under
//! `results/`.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use metadse::experiment::Scale;

/// Selects the experiment scale from CLI arguments (`--quick`, `--paper`)
/// or the `METADSE_SCALE` environment variable (`quick`/`scaled`/`paper`).
/// Defaults to [`Scale::scaled`].
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    let from_env = std::env::var("METADSE_SCALE").unwrap_or_default();
    if args.iter().any(|a| a == "--paper") || from_env == "paper" {
        Scale::paper()
    } else if args.iter().any(|a| a == "--quick") || from_env == "quick" {
        Scale::quick()
    } else {
        Scale::scaled()
    }
}

/// Human-readable name of the selected scale (for banners).
pub fn scale_name(scale: &Scale) -> &'static str {
    if *scale == Scale::paper() {
        "paper"
    } else if *scale == Scale::quick() {
        "quick"
    } else {
        "scaled"
    }
}

/// Prints a banner naming the experiment and scale.
pub fn banner(experiment: &str, scale: &Scale) {
    println!("================================================================");
    println!(
        "MetaDSE reproduction — {experiment} ({} scale)",
        scale_name(scale)
    );
    println!("================================================================");
}

/// Renders rows as an aligned text table. The first row is the header.
///
/// # Panics
///
/// Panics if rows have inconsistent arity.
pub fn render_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows[0].len();
    let mut widths = vec![0usize; cols];
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        for (w, cell) in widths.iter().zip(row) {
            out.push_str(&format!("{cell:<width$}  ", width = w));
        }
        out.push('\n');
        if i == 0 {
            for w in &widths {
                out.push_str(&"-".repeat(*w));
                out.push_str("  ");
            }
            out.push('\n');
        }
    }
    out
}

/// Directory where result CSVs are written (`results/`, created on
/// demand).
pub fn results_dir() -> PathBuf {
    let dir = Path::new("results").to_path_buf();
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Writes rows as CSV under `results/<name>.csv`.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_csv(name: &str, rows: &[Vec<String>]) -> io::Result<PathBuf> {
    let path = results_dir().join(format!("{name}.csv"));
    let body: String = rows
        .iter()
        .map(|r| r.join(","))
        .collect::<Vec<_>>()
        .join("\n");
    fs::write(&path, body + "\n")?;
    Ok(path)
}

/// Formats a float with 4 decimal places (the paper's precision).
pub fn f4(v: f64) -> String {
    format!("{v:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_is_aligned() {
        let rows = vec![
            vec!["model".to_string(), "rmse".to_string()],
            vec!["MetaDSE".to_string(), "0.22".to_string()],
        ];
        let s = render_table(&rows);
        assert!(s.contains("model"));
        assert!(s.contains("-----"));
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn f4_rounds() {
        assert_eq!(f4(0.123456), "0.1235");
    }

    #[test]
    fn default_scale_is_scaled() {
        if std::env::var("METADSE_SCALE").is_err() {
            assert_eq!(scale_name(&scale_from_args()), "scaled");
        }
    }
}
