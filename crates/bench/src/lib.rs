//! Shared harness utilities for the MetaDSE benchmark binaries.
//!
//! Every binary regenerates one table or figure of the paper (see
//! DESIGN.md §4) at a scale selected on the command line:
//!
//! ```text
//! cargo run --release -p metadse-bench --bin fig5            # scaled (default)
//! cargo run --release -p metadse-bench --bin fig5 -- --quick # seconds
//! cargo run --release -p metadse-bench --bin fig5 -- --paper # paper-scale
//! ```
//!
//! Results are printed as aligned text tables and mirrored as CSV under
//! `results/`.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use metadse::experiment::Scale;
pub use metadse_obs::report;

/// Heap-allocation counting, active only with the `alloc-count` feature.
///
/// The feature installs a counting wrapper around [`std::alloc::System`]
/// as the global allocator; [`alloc_count::allocations`] then reads a
/// monotonic process-wide allocation counter. Without the feature the
/// counter always reads zero and no allocator is installed, so default
/// builds pay nothing.
pub mod alloc_count {
    #[cfg(feature = "alloc-count")]
    mod counting {
        use std::alloc::{GlobalAlloc, Layout, System};
        use std::sync::atomic::{AtomicU64, Ordering};

        pub(super) static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

        /// [`System`] plus one relaxed counter increment per allocation
        /// (`realloc` counts too: it may move the block).
        struct CountingAlloc;

        // SAFETY: delegates every operation to `System` unchanged; the
        // only addition is a relaxed atomic increment.
        unsafe impl GlobalAlloc for CountingAlloc {
            unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
                ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
                System.alloc(layout)
            }

            unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
                ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
                System.alloc_zeroed(layout)
            }

            unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
                ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
                System.realloc(ptr, layout, new_size)
            }

            unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
                System.dealloc(ptr, layout)
            }
        }

        #[global_allocator]
        static GLOBAL: CountingAlloc = CountingAlloc;
    }

    /// Whether allocation counting is compiled in.
    pub fn enabled() -> bool {
        cfg!(feature = "alloc-count")
    }

    /// Total heap allocations made by this process so far (0 without the
    /// `alloc-count` feature). Monotonic; subtract two readings to count
    /// the allocations of a region.
    pub fn allocations() -> u64 {
        #[cfg(feature = "alloc-count")]
        {
            counting::ALLOCATIONS.load(std::sync::atomic::Ordering::Relaxed)
        }
        #[cfg(not(feature = "alloc-count"))]
        {
            0
        }
    }
}

/// Shared fixtures for the serving benchmarks, used by both
/// `serve_bench` (which owns the full `serve/` row family in
/// `BENCH_results.json`) and `bench_report --smoke` (which re-times the
/// raw batched forward as a regression gate). Keeping the geometry and
/// the request generator in one place guarantees the gate measures
/// exactly what the committed row measured.
pub mod serving {
    use metadse::predictor::{PredictorConfig, TransformerPredictor};

    /// Dispatch-bound serving geometry: tiny rows, deep stack. Per-call
    /// op dispatch dominates per-row math, so batching has real
    /// headroom.
    pub const DISPATCH_GEOM: PredictorConfig = PredictorConfig {
        num_params: 2,
        d_model: 2,
        heads: 1,
        depth: 16,
        d_hidden: 2,
        head_hidden: 2,
    };

    /// The batch size the headline serving rows are measured at.
    pub const BATCH: usize = 32;

    /// A deterministic feature row for request `i`.
    pub fn request_row(i: usize, arity: usize) -> Vec<f64> {
        (0..arity)
            .map(|j| ((i * 7 + j * 3) % 17) as f64 / 17.0)
            .collect()
    }

    /// The model and input batch behind the `serve/raw_predict_b32`
    /// row: a fresh dispatch-geometry predictor and [`BATCH`]
    /// deterministic rows.
    pub fn raw_predict_fixture() -> (TransformerPredictor, Vec<Vec<f64>>) {
        let model = TransformerPredictor::new(DISPATCH_GEOM, 9);
        let batch = (0..BATCH)
            .map(|i| request_row(i, DISPATCH_GEOM.num_params))
            .collect();
        (model, batch)
    }
}

/// Launching sharded serving fleets for the benchmark and soak
/// binaries: N `--shard-worker` re-executions of the *current* binary
/// supervised by [`metadse_serve::Supervisor`], fronted by an in-process
/// [`metadse_serve::Front`]. One binary carries driver and worker — the
/// driver spawns `std::env::current_exe()` with
/// [`metadse_serve::shard::WORKER_FLAG`], so fleets need no install
/// step and always run the exact code under test.
///
/// Any binary using this module **must** call
/// [`metadse_serve::shard::run_worker_if_flagged`] first in `main`.
#[cfg(unix)]
pub mod fleet {
    use std::io;
    use std::path::{Path, PathBuf};

    use metadse_serve::front::{Front, FrontConfig};
    use metadse_serve::shard::{shard_socket, WORKER_FLAG};
    use metadse_serve::supervisor::{ShardPlan, Supervisor, SupervisorConfig};

    /// How to stand up one fleet.
    #[derive(Debug, Clone)]
    pub struct FleetOptions {
        /// Scratch directory holding every socket (`shard-N.sock`,
        /// `front.sock`, and their `.intro` twins).
        pub dir: PathBuf,
        /// Registry root all shards read their partitions from.
        pub registry_root: PathBuf,
        /// Worker-process count.
        pub shards: usize,
        /// Worker threads per shard.
        pub workers: usize,
        /// Batching cap per shard.
        pub max_batch: usize,
        /// Batching wait per shard, µs.
        pub max_wait_us: u64,
        /// Session checkpoint root passed to every worker
        /// (`--session-dir`); `None` leaves sessions in memory only, so
        /// a killed worker loses them.
        pub session_dir: Option<PathBuf>,
        /// Restart policy and readiness budget.
        pub supervisor: SupervisorConfig,
    }

    impl FleetOptions {
        /// A fleet of `shards` workers over `registry_root`, sockets
        /// under `dir`, with soak-friendly defaults (1 worker thread,
        /// batch 8 / 100 µs).
        pub fn new(
            dir: impl Into<PathBuf>,
            registry_root: impl Into<PathBuf>,
            shards: usize,
        ) -> FleetOptions {
            FleetOptions {
                dir: dir.into(),
                registry_root: registry_root.into(),
                shards,
                workers: 1,
                max_batch: 8,
                max_wait_us: 100,
                session_dir: None,
                supervisor: SupervisorConfig::default(),
            }
        }

        /// The spawn plan for shard `index`: re-execute this binary
        /// with [`WORKER_FLAG`].
        ///
        /// # Errors
        ///
        /// When `std::env::current_exe` cannot name the running binary.
        pub fn worker_plan(&self, index: usize) -> io::Result<ShardPlan> {
            let socket = shard_socket(&self.dir, index);
            let mut args = [
                WORKER_FLAG,
                "--socket",
                &socket.display().to_string(),
                "--registry",
                &self.registry_root.display().to_string(),
                "--shard-index",
                &index.to_string(),
                "--shard-count",
                &self.shards.to_string(),
                "--workers",
                &self.workers.to_string(),
                "--max-batch",
                &self.max_batch.to_string(),
                "--max-wait-us",
                &self.max_wait_us.to_string(),
            ]
            .map(String::from)
            .to_vec();
            if let Some(session_dir) = &self.session_dir {
                args.push("--session-dir".to_string());
                args.push(session_dir.display().to_string());
            }
            Ok(ShardPlan {
                program: std::env::current_exe()?,
                args,
                socket,
            })
        }
    }

    /// A running fleet: supervised worker processes plus the front door.
    pub struct Fleet {
        /// Process supervisor (fault injection: [`Supervisor::kill`]).
        pub supervisor: Supervisor,
        /// The front door, running in the driver process.
        pub front: Front,
    }

    impl Fleet {
        /// The client socket to connect to.
        pub fn socket(&self) -> &Path {
            self.front.socket()
        }

        /// Orderly teardown: front first (stop accepting), then the
        /// worker processes.
        pub fn shutdown(self) {
            self.front.shutdown();
            self.supervisor.shutdown();
        }
    }

    /// Spawns the worker fleet, blocks on every shard's readiness
    /// barrier, then starts the front over their sockets.
    ///
    /// # Errors
    ///
    /// Spawn failures, readiness timeouts, or socket-bind errors.
    pub fn launch(opts: &FleetOptions) -> io::Result<Fleet> {
        std::fs::create_dir_all(&opts.dir)?;
        let plans: Vec<ShardPlan> = (0..opts.shards)
            .map(|i| opts.worker_plan(i))
            .collect::<io::Result<_>>()?;
        let sockets: Vec<PathBuf> = plans.iter().map(|p| p.socket.clone()).collect();
        let supervisor = Supervisor::launch(plans, opts.supervisor)?;
        let front = Front::start(FrontConfig::new(opts.dir.join("front.sock"), sockets))?;
        Ok(Fleet { supervisor, front })
    }
}

/// Selects the experiment scale from CLI arguments (`--quick`, `--paper`)
/// or the `METADSE_SCALE` environment variable (`quick`/`scaled`/`paper`).
/// Defaults to [`Scale::scaled`].
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    let from_env = std::env::var("METADSE_SCALE").unwrap_or_default();
    if args.iter().any(|a| a == "--paper") || from_env == "paper" {
        Scale::paper()
    } else if args.iter().any(|a| a == "--quick") || from_env == "quick" {
        Scale::quick()
    } else {
        Scale::scaled()
    }
}

/// Human-readable name of the selected scale (for banners).
pub fn scale_name(scale: &Scale) -> &'static str {
    if *scale == Scale::paper() {
        "paper"
    } else if *scale == Scale::quick() {
        "quick"
    } else {
        "scaled"
    }
}

/// Prints a banner naming the experiment and scale through the shared
/// report sink.
pub fn banner(experiment: &str, scale: &Scale) {
    report::banner(&format!(
        "MetaDSE reproduction — {experiment} ({} scale)",
        scale_name(scale)
    ));
}

/// Renders rows as an aligned text table. The first row is the header.
/// Thin wrapper over [`report::render_table`], kept so every harness
/// binary renders through one implementation.
///
/// # Panics
///
/// Panics if rows have inconsistent arity.
pub fn render_table(rows: &[Vec<String>]) -> String {
    report::render_table(rows)
}

/// Directory where result CSVs are written (`results/`, created on
/// demand).
pub fn results_dir() -> PathBuf {
    let dir = Path::new("results").to_path_buf();
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Writes rows as CSV under `results/<name>.csv`, atomically: a harness
/// binary killed mid-write never leaves a truncated CSV for downstream
/// tooling to trip over.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_csv(name: &str, rows: &[Vec<String>]) -> io::Result<PathBuf> {
    let path = results_dir().join(format!("{name}.csv"));
    let body: String = rows
        .iter()
        .map(|r| r.join(","))
        .collect::<Vec<_>>()
        .join("\n");
    metadse_nn::format::atomic_write(&path, (body + "\n").as_bytes())?;
    Ok(path)
}

/// Formats a float with 4 decimal places (the paper's precision).
pub fn f4(v: f64) -> String {
    format!("{v:.4}")
}

/// A self-contained wall-clock micro-benchmark harness (the build is
/// hermetic, so there is no Criterion; `cargo bench` targets and the
/// `bench_report` binary both run on this).
pub mod timing {
    use std::fmt::Write as _;
    use std::io;
    use std::path::Path;
    use std::time::Instant;

    pub use std::hint::black_box;

    /// One benchmark result: mean wall time per iteration.
    #[derive(Debug, Clone)]
    pub struct Sample {
        /// Benchmark name, e.g. `"matmul/packed_16x21x32"`.
        pub name: String,
        /// Mean wall-clock nanoseconds per iteration.
        pub wall_ns: u128,
        /// Iterations timed (after one warm-up call).
        pub iters: u32,
        /// Worker threads the benchmarked code was configured with
        /// (1 for inherently serial code).
        pub threads: usize,
        /// Mean heap allocations per iteration (0 unless the harness is
        /// built with the `alloc-count` feature).
        pub allocs: u64,
    }

    /// Collects [`Sample`]s, prints them as they finish, and renders a
    /// report or machine-readable JSON at the end.
    #[derive(Debug, Default)]
    pub struct Harness {
        samples: Vec<Sample>,
        /// Target total measurement time per benchmark, in nanoseconds.
        target_ns: u128,
        /// Iteration cap, so end-to-end benches stay bounded.
        max_iters: u32,
    }

    impl Harness {
        /// A harness targeting ~200 ms of measurement per benchmark,
        /// capped at 1000 iterations.
        pub fn new() -> Harness {
            Harness {
                samples: Vec::new(),
                target_ns: 200_000_000,
                max_iters: 1000,
            }
        }

        /// Overrides the measurement-time target (per benchmark).
        pub fn with_target_ms(mut self, ms: u64) -> Harness {
            self.target_ns = u128::from(ms) * 1_000_000;
            self
        }

        /// Times `f`, attributing the result to one worker thread.
        pub fn bench<T>(&mut self, name: &str, f: impl FnMut() -> T) -> &Sample {
            self.bench_threads(name, 1, f)
        }

        /// Times `f`, recording that it ran with `threads` workers.
        ///
        /// Runs one untimed warm-up call, sizes the iteration count from
        /// it to hit the harness's time target, then reports the mean.
        pub fn bench_threads<T>(
            &mut self,
            name: &str,
            threads: usize,
            mut f: impl FnMut() -> T,
        ) -> &Sample {
            let warmup = Instant::now();
            black_box(f());
            let once_ns = warmup.elapsed().as_nanos().max(1);
            let iters = (self.target_ns / once_ns).clamp(1, u128::from(self.max_iters)) as u32;

            let allocs_before = crate::alloc_count::allocations();
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let wall_ns = start.elapsed().as_nanos() / u128::from(iters);
            let allocs = (crate::alloc_count::allocations() - allocs_before) / u64::from(iters);

            let sample = Sample {
                name: name.to_string(),
                wall_ns,
                iters,
                threads,
                allocs,
            };
            crate::report::line(format_sample(&sample));
            self.samples.push(sample);
            self.samples.last().expect("just pushed")
        }

        /// Records a sample measured outside [`Harness::bench_threads`]
        /// (e.g. a latency percentile or a throughput computed from a
        /// multi-threaded run), printing it like a timed benchmark.
        pub fn record(&mut self, sample: Sample) -> &Sample {
            crate::report::line(format_sample(&sample));
            self.samples.push(sample);
            self.samples.last().expect("just pushed")
        }

        /// All recorded samples, in run order.
        pub fn samples(&self) -> &[Sample] {
            &self.samples
        }

        /// The samples as a JSON array of
        /// `{"name": …, "wall_ns": …, "iters": …, "threads": …, "allocs": …}`.
        pub fn to_json(&self) -> String {
            let mut out = String::from("[\n");
            for (i, s) in self.samples.iter().enumerate() {
                let _ = write!(
                    out,
                    "  {{\"name\": \"{}\", \"wall_ns\": {}, \"iters\": {}, \"threads\": {}, \"allocs\": {}}}",
                    s.name.replace('\\', "\\\\").replace('"', "\\\""),
                    s.wall_ns,
                    s.iters,
                    s.threads,
                    s.allocs
                );
                out.push_str(if i + 1 < self.samples.len() {
                    ",\n"
                } else {
                    "\n"
                });
            }
            out.push_str("]\n");
            out
        }

        /// Writes [`Harness::to_json`] to `path` atomically (temp file →
        /// fsync → rename), so a killed run never leaves partial JSON.
        ///
        /// # Errors
        ///
        /// Returns any underlying I/O error.
        pub fn write_json(&self, path: &Path) -> io::Result<()> {
            metadse_nn::format::atomic_write(path, self.to_json().as_bytes())
        }

        /// Merge-writes this harness's samples into `path`: existing rows
        /// whose name starts with one of `owned_prefixes` (or collides
        /// with a new sample) are replaced, every other row is
        /// preserved. Lets independent benchmark binaries
        /// (`bench_report`, `serve_bench`) share one
        /// `BENCH_results.json` without clobbering each other's
        /// families. Rows are written sorted by name, so the merged
        /// file is deterministic regardless of which binary ran last
        /// and diffs stay reviewable.
        ///
        /// # Errors
        ///
        /// Returns any underlying I/O error (a missing file is not an
        /// error: the merge starts from empty).
        pub fn write_json_merged(&self, path: &Path, owned_prefixes: &[&str]) -> io::Result<()> {
            let existing = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
                Err(e) => return Err(e),
            };
            let mut rows: Vec<String> = Vec::new();
            for line in existing.lines() {
                let Some(name) = sample_line_name(line) else {
                    continue;
                };
                let owned = owned_prefixes.iter().any(|p| name.starts_with(p))
                    || self.samples.iter().any(|s| s.name == name);
                if !owned {
                    rows.push(line.trim().trim_end_matches(',').to_string());
                }
            }
            for line in self.to_json().lines() {
                if sample_line_name(line).is_some() {
                    rows.push(line.trim().trim_end_matches(',').to_string());
                }
            }
            rows.sort_by_cached_key(|row| sample_line_name(row).unwrap_or_default());
            let mut out = String::from("[\n");
            for (i, row) in rows.iter().enumerate() {
                out.push_str("  ");
                out.push_str(row);
                out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
            }
            out.push_str("]\n");
            metadse_nn::format::atomic_write(path, out.as_bytes())
        }
    }

    /// Extracts the benchmark name from one serialized sample line of a
    /// `BENCH_results.json` (`{"name": "…", "wall_ns": …}`), handling
    /// backslash escapes. `None` for array brackets or malformed lines.
    fn sample_line_name(line: &str) -> Option<String> {
        let rest = line.trim().strip_prefix("{\"name\": \"")?;
        let mut name = String::new();
        let mut chars = rest.chars();
        while let Some(c) = chars.next() {
            match c {
                '\\' => name.push(chars.next()?),
                '"' => return Some(name),
                _ => name.push(c),
            }
        }
        None
    }

    /// Renders one sample as a fixed-width report line.
    fn format_sample(s: &Sample) -> String {
        let allocs = if s.allocs > 0 {
            format!(", {} allocs/iter", s.allocs)
        } else {
            String::new()
        };
        format!(
            "{:<44} {:>14}  ({} iters, {} thread{}{allocs})",
            s.name,
            human_ns(s.wall_ns),
            s.iters,
            s.threads,
            if s.threads == 1 { "" } else { "s" }
        )
    }

    /// Formats nanoseconds with an adaptive unit.
    pub fn human_ns(ns: u128) -> String {
        if ns >= 1_000_000_000 {
            format!("{:.3} s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            format!("{:.3} ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            format!("{:.3} µs", ns as f64 / 1e3)
        } else {
            format!("{ns} ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_is_aligned() {
        let rows = vec![
            vec!["model".to_string(), "rmse".to_string()],
            vec!["MetaDSE".to_string(), "0.22".to_string()],
        ];
        let s = render_table(&rows);
        assert!(s.contains("model"));
        assert!(s.contains("-----"));
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn f4_rounds() {
        assert_eq!(f4(0.123456), "0.1235");
    }

    #[test]
    fn default_scale_is_scaled() {
        if std::env::var("METADSE_SCALE").is_err() {
            assert_eq!(scale_name(&scale_from_args()), "scaled");
        }
    }

    #[test]
    fn timing_harness_records_and_serializes() {
        let mut h = timing::Harness::new().with_target_ms(1);
        h.bench("trivial", || 1 + 1);
        h.bench_threads("parallel\"ish", 4, || std::hint::black_box(2) * 3);
        assert_eq!(h.samples().len(), 2);
        assert_eq!(h.samples()[1].threads, 4);
        let json = h.to_json();
        assert!(json.contains("\"name\": \"trivial\""));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"allocs\": "));
        assert!(json.contains("parallel\\\"ish"));
    }

    #[test]
    fn merged_write_preserves_foreign_rows_and_replaces_owned() {
        let dir = std::env::temp_dir().join("metadse_bench_merge_test");
        let _ = fs::create_dir_all(&dir);
        let path = dir.join("merged.json");
        let _ = fs::remove_file(&path);

        let mut first = timing::Harness::new().with_target_ms(1);
        first.bench("maml/thing", || 1);
        first.record(timing::Sample {
            name: "serve/old".to_string(),
            wall_ns: 42,
            iters: 1,
            threads: 1,
            allocs: 0,
        });
        first
            .write_json_merged(&path, &["maml/", "serve/"])
            .unwrap();

        let mut second = timing::Harness::new().with_target_ms(1);
        second.record(timing::Sample {
            name: "serve/new".to_string(),
            wall_ns: 7,
            iters: 1,
            threads: 1,
            allocs: 0,
        });
        // `aaa/first` sorts before the preserved foreign row: the merge
        // must reorder, not append.
        second.record(timing::Sample {
            name: "aaa/first".to_string(),
            wall_ns: 9,
            iters: 1,
            threads: 1,
            allocs: 0,
        });
        second
            .write_json_merged(&path, &["serve/", "aaa/"])
            .unwrap();

        let merged = fs::read_to_string(&path).unwrap();
        assert!(merged.contains("\"name\": \"maml/thing\""), "{merged}");
        assert!(merged.contains("\"name\": \"serve/new\""), "{merged}");
        assert!(!merged.contains("\"name\": \"serve/old\""), "{merged}");
        assert!(merged.trim_start().starts_with('['));
        assert!(merged.trim_end().ends_with(']'));
        // Still one object per line, parseable by the smoke-gate reader.
        assert_eq!(
            merged.lines().filter(|l| l.contains("\"wall_ns\"")).count(),
            3
        );
        // Rows come out sorted by name whatever the write order was.
        let names: Vec<&str> = merged
            .lines()
            .filter_map(|l| {
                l.trim()
                    .strip_prefix("{\"name\": \"")
                    .and_then(|r| r.split('"').next())
            })
            .collect();
        assert_eq!(names, ["aaa/first", "maml/thing", "serve/new"], "{merged}");
    }

    #[test]
    fn human_ns_picks_units() {
        assert_eq!(timing::human_ns(12), "12 ns");
        assert_eq!(timing::human_ns(1_500), "1.500 µs");
        assert_eq!(timing::human_ns(2_000_000), "2.000 ms");
        assert_eq!(timing::human_ns(3_000_000_000), "3.000 s");
    }
}
