//! Microbenchmarks of the analytical simulator — the substrate whose
//! speed (vs hours per gem5 SimPoint) makes this reproduction tractable.

use metadse_bench::timing::{black_box, Harness};
use metadse_sim::{DesignSpace, Simulator};
use metadse_workloads::{Dataset, PhaseSet, SpecWorkload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_single_simulation(h: &mut Harness) {
    let space = DesignSpace::new();
    let sim = Simulator::new();
    let mut rng = StdRng::seed_from_u64(1);
    let point = space.random_point(&mut rng);
    let config = space.config(&point);
    let profile = SpecWorkload::Mcf605.profile();
    h.bench("simulator/single_point", || {
        black_box(sim.simulate(black_box(&config), black_box(&profile)))
    });
}

fn bench_phase_aggregated_label(h: &mut Harness) {
    let space = DesignSpace::new();
    let sim = Simulator::new();
    let mut rng = StdRng::seed_from_u64(2);
    let points = vec![space.random_point(&mut rng)];
    h.bench("simulator/simpoint_aggregated_label", || {
        black_box(Dataset::generate_at(
            &space,
            &sim,
            SpecWorkload::Cam4_627,
            black_box(&points),
        ))
    });
}

fn bench_phase_generation(h: &mut Harness) {
    h.bench("simulator/phase_set_generation", || {
        black_box(PhaseSet::generate(black_box(SpecWorkload::Gcc602)))
    });
}

fn bench_design_space_ops(h: &mut Harness) {
    let space = DesignSpace::new();
    let mut rng = StdRng::seed_from_u64(3);
    let point = space.random_point(&mut rng);
    h.bench("design_space/encode", || {
        black_box(space.encode(black_box(&point)))
    });
    h.bench("design_space/neighbors", || {
        black_box(space.neighbors(black_box(&point)))
    });
}

fn main() {
    let mut h = Harness::new();
    bench_single_simulation(&mut h);
    bench_phase_aggregated_label(&mut h);
    bench_phase_generation(&mut h);
    bench_design_space_ops(&mut h);
}
