//! Criterion microbenchmarks of the analytical simulator — the substrate
//! whose speed (vs hours per gem5 SimPoint) makes this reproduction
//! tractable.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use metadse_sim::{DesignSpace, Simulator};
use metadse_workloads::{Dataset, PhaseSet, SpecWorkload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_single_simulation(c: &mut Criterion) {
    let space = DesignSpace::new();
    let sim = Simulator::new();
    let mut rng = StdRng::seed_from_u64(1);
    let point = space.random_point(&mut rng);
    let config = space.config(&point);
    let profile = SpecWorkload::Mcf605.profile();
    c.bench_function("simulator/single_point", |b| {
        b.iter(|| black_box(sim.simulate(black_box(&config), black_box(&profile))))
    });
}

fn bench_phase_aggregated_label(c: &mut Criterion) {
    let space = DesignSpace::new();
    let sim = Simulator::new();
    let mut rng = StdRng::seed_from_u64(2);
    let points = vec![space.random_point(&mut rng)];
    c.bench_function("simulator/simpoint_aggregated_label", |b| {
        b.iter(|| {
            black_box(Dataset::generate_at(
                &space,
                &sim,
                SpecWorkload::Cam4_627,
                black_box(&points),
            ))
        })
    });
}

fn bench_phase_generation(c: &mut Criterion) {
    c.bench_function("simulator/phase_set_generation", |b| {
        b.iter(|| black_box(PhaseSet::generate(black_box(SpecWorkload::Gcc602))))
    });
}

fn bench_design_space_ops(c: &mut Criterion) {
    let space = DesignSpace::new();
    let mut rng = StdRng::seed_from_u64(3);
    let point = space.random_point(&mut rng);
    c.bench_function("design_space/encode", |b| {
        b.iter(|| black_box(space.encode(black_box(&point))))
    });
    c.bench_function("design_space/neighbors", |b| {
        b.iter(|| black_box(space.neighbors(black_box(&point))))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_single_simulation,
        bench_phase_aggregated_label,
        bench_phase_generation,
        bench_design_space_ops
);
criterion_main!(benches);
