//! Criterion benchmarks of the meta-learning machinery, including the
//! first-order vs second-order MAML ablation (DESIGN.md §5): full MAML
//! differentiates through the unrolled inner loop, so its cost multiple
//! over FOMAML is the price of the exact meta-gradient.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use metadse::maml::inner_adapt;
use metadse::predictor::{PredictorConfig, TransformerPredictor};
use metadse::wam::{adapt, AdaptConfig};
use metadse_nn::autograd::grad;
use metadse_nn::layers::{self, Module};

fn small_model() -> TransformerPredictor {
    TransformerPredictor::new(
        PredictorConfig {
            num_params: 21,
            d_model: 16,
            heads: 2,
            depth: 1,
            d_hidden: 32,
            head_hidden: 16,
        },
        7,
    )
}

fn task(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let x: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..21).map(|j| ((i * 7 + j) as f64 * 0.31) % 1.0).collect())
        .collect();
    let y: Vec<f64> = (0..n).map(|i| 0.5 + i as f64 * 0.05).collect();
    (x, y)
}

fn bench_inner_loop_orders(c: &mut Criterion) {
    let model = small_model();
    let (sx, sy) = task(5);
    let (qx, qy) = task(20);
    let params = model.params();

    let mut group = c.benchmark_group("maml/meta_step");
    group.sample_size(20);
    for (label, second_order) in [("first_order", false), ("second_order", true)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let theta = inner_adapt(&model, &sx, &sy, 3, 0.01, second_order);
                let loss = model.mse_on(&qx, &qy);
                let meta = grad(&loss, &theta, false);
                layers::restore(&params, &theta);
                black_box(meta)
            })
        });
    }
    group.finish();
}

fn bench_wam_adaptation(c: &mut Criterion) {
    let model = small_model();
    let (sx, sy) = task(10);
    let params = model.params();
    c.bench_function("maml/wam_adaptation_10steps", |b| {
        b.iter(|| {
            let theta = adapt(&model, &sx, &sy, &AdaptConfig::default());
            layers::restore(&params, &theta);
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_inner_loop_orders, bench_wam_adaptation
);
criterion_main!(benches);
