//! Benchmarks of the meta-learning machinery, including the first-order
//! vs second-order MAML ablation (DESIGN.md §5): full MAML differentiates
//! through the unrolled inner loop, so its cost multiple over FOMAML is
//! the price of the exact meta-gradient.

use metadse::maml::inner_adapt;
use metadse::predictor::{PredictorConfig, TransformerPredictor};
use metadse::wam::{adapt, AdaptConfig};
use metadse_bench::timing::{black_box, Harness};
use metadse_nn::autograd::grad;
use metadse_nn::layers::{self, Module};

fn small_model() -> TransformerPredictor {
    TransformerPredictor::new(
        PredictorConfig {
            num_params: 21,
            d_model: 16,
            heads: 2,
            depth: 1,
            d_hidden: 32,
            head_hidden: 16,
        },
        7,
    )
}

fn task(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let x: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..21).map(|j| ((i * 7 + j) as f64 * 0.31) % 1.0).collect())
        .collect();
    let y: Vec<f64> = (0..n).map(|i| 0.5 + i as f64 * 0.05).collect();
    (x, y)
}

fn bench_inner_loop_orders(h: &mut Harness) {
    let model = small_model();
    let (sx, sy) = task(5);
    let (qx, qy) = task(20);
    let params = model.params();

    for (label, second_order) in [("first_order", false), ("second_order", true)] {
        h.bench(&format!("maml/meta_step/{label}"), || {
            let theta = inner_adapt(&model, &sx, &sy, 3, 0.01, second_order);
            let loss = model.mse_on(&qx, &qy);
            let meta = grad(&loss, &theta, false);
            layers::restore(&params, &theta);
            black_box(meta)
        });
    }
}

fn bench_wam_adaptation(h: &mut Harness) {
    let model = small_model();
    let (sx, sy) = task(10);
    let params = model.params();
    h.bench("maml/wam_adaptation_10steps", || {
        let theta = adapt(&model, &sx, &sy, &AdaptConfig::default());
        layers::restore(&params, &theta);
    });
}

fn main() {
    let mut h = Harness::new();
    bench_inner_loop_orders(&mut h);
    bench_wam_adaptation(&mut h);
}
