//! Criterion benchmarks of the transformer surrogate: inference latency
//! and training-step cost, plus the depth/width ablation called out in
//! DESIGN.md §5 (surrogate latency is what the DSE loop pays per candidate
//! configuration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use metadse::predictor::{PredictorConfig, TransformerPredictor};
use metadse_nn::autograd::grad;
use metadse_nn::layers::Module;

fn rows(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| (0..21).map(|j| ((i * 21 + j) as f64 * 0.37) % 1.0).collect())
        .collect()
}

fn bench_inference(c: &mut Criterion) {
    let model = TransformerPredictor::new(PredictorConfig::default(), 1);
    let mut group = c.benchmark_group("predictor/inference");
    for batch in [1usize, 16, 64] {
        let x = rows(batch);
        group.bench_with_input(BenchmarkId::from_parameter(batch), &x, |b, x| {
            b.iter(|| black_box(model.predict(black_box(x))))
        });
    }
    group.finish();
}

fn bench_training_step(c: &mut Criterion) {
    let model = TransformerPredictor::new(PredictorConfig::default(), 2);
    let x = rows(10);
    let y: Vec<f64> = (0..10).map(|i| i as f64 / 10.0).collect();
    c.bench_function("predictor/forward_backward_10shot", |b| {
        b.iter(|| {
            let loss = model.mse_on(black_box(&x), black_box(&y));
            let tensors: Vec<_> = model.params().iter().map(|p| p.get()).collect();
            black_box(grad(&loss, &tensors, false))
        })
    });
}

fn bench_geometry_ablation(c: &mut Criterion) {
    // Depth/width ablation: what extra capacity costs per prediction.
    let mut group = c.benchmark_group("predictor/geometry");
    group.sample_size(20);
    let x = rows(16);
    for (label, d_model, depth) in [("d16x1", 16, 1), ("d32x2", 32, 2), ("d64x3", 64, 3)] {
        let cfg = PredictorConfig {
            num_params: 21,
            d_model,
            heads: 4,
            depth,
            d_hidden: d_model * 2,
            head_hidden: d_model,
        };
        let model = TransformerPredictor::new(cfg, 3);
        group.bench_function(label, |b| b.iter(|| black_box(model.predict(black_box(&x)))));
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_inference, bench_training_step, bench_geometry_ablation
);
criterion_main!(benches);
