//! Benchmarks of the transformer surrogate: inference latency and
//! training-step cost, plus the depth/width ablation called out in
//! DESIGN.md §5 (surrogate latency is what the DSE loop pays per candidate
//! configuration).

use metadse::predictor::{PredictorConfig, TransformerPredictor};
use metadse_bench::timing::{black_box, Harness};
use metadse_nn::autograd::grad;
use metadse_nn::layers::Module;

fn rows(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..21)
                .map(|j| ((i * 21 + j) as f64 * 0.37) % 1.0)
                .collect()
        })
        .collect()
}

fn bench_inference(h: &mut Harness) {
    let model = TransformerPredictor::new(PredictorConfig::default(), 1);
    for batch in [1usize, 16, 64] {
        let x = rows(batch);
        h.bench(&format!("predictor/inference/{batch}"), || {
            black_box(model.predict(black_box(&x)))
        });
    }
}

fn bench_training_step(h: &mut Harness) {
    let model = TransformerPredictor::new(PredictorConfig::default(), 2);
    let x = rows(10);
    let y: Vec<f64> = (0..10).map(|i| i as f64 / 10.0).collect();
    h.bench("predictor/forward_backward_10shot", || {
        let loss = model.mse_on(black_box(&x), black_box(&y));
        let tensors: Vec<_> = model.params().iter().map(|p| p.get()).collect();
        black_box(grad(&loss, &tensors, false))
    });
}

fn bench_geometry_ablation(h: &mut Harness) {
    // Depth/width ablation: what extra capacity costs per prediction.
    let x = rows(16);
    for (label, d_model, depth) in [("d16x1", 16, 1), ("d32x2", 32, 2), ("d64x3", 64, 3)] {
        let cfg = PredictorConfig {
            num_params: 21,
            d_model,
            heads: 4,
            depth,
            d_hidden: d_model * 2,
            head_hidden: d_model,
        };
        let model = TransformerPredictor::new(cfg, 3);
        h.bench(&format!("predictor/geometry/{label}"), || {
            black_box(model.predict(black_box(&x)))
        });
    }
}

fn main() {
    let mut h = Harness::new();
    bench_inference(&mut h);
    bench_training_step(&mut h);
    bench_geometry_ablation(&mut h);
}
