//! Benchmarks of the classical-ML baselines (per-task fit cost is what
//! dominates TrEnDSE's evaluation loop).

use metadse_bench::timing::{black_box, Harness};
use metadse_mlkit::wasserstein::wasserstein_1d;
use metadse_mlkit::{GradientBoosting, RandomForest, Regressor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn data(n: usize, d: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let x: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let y: Vec<f64> = x
        .iter()
        .map(|r| {
            r.iter()
                .enumerate()
                .map(|(j, v)| v * (j as f64).sin())
                .sum()
        })
        .collect();
    (x, y)
}

fn bench_forest(h: &mut Harness) {
    let (x, y) = data(300, 21, 1);
    h.bench("mlkit/random_forest_fit_300x21", || {
        let mut rf = RandomForest::new(30, 10, 2, 5);
        rf.fit(black_box(&x), black_box(&y));
        black_box(rf)
    });
    let mut rf = RandomForest::new(30, 10, 2, 5);
    rf.fit(&x, &y);
    h.bench("mlkit/random_forest_predict", || {
        black_box(rf.predict_one(black_box(&x[0])))
    });
}

fn bench_gbrt(h: &mut Harness) {
    let (x, y) = data(300, 21, 2);
    h.bench("mlkit/gbrt_fit_300x21", || {
        let mut g = GradientBoosting::new(80, 0.1, 3, 2);
        g.fit(black_box(&x), black_box(&y));
        black_box(g)
    });
}

fn bench_wasserstein(h: &mut Harness) {
    let mut rng = StdRng::seed_from_u64(3);
    let a: Vec<f64> = (0..400).map(|_| rng.gen_range(0.0..4.0)).collect();
    let b: Vec<f64> = (0..400).map(|_| rng.gen_range(1.0..5.0)).collect();
    h.bench("mlkit/wasserstein_400v400", || {
        black_box(wasserstein_1d(black_box(&a), black_box(&b)))
    });
}

fn main() {
    let mut h = Harness::new();
    bench_forest(&mut h);
    bench_gbrt(&mut h);
    bench_wasserstein(&mut h);
}
