//! End-to-end coverage of every paper experiment's code path at a
//! seconds-scale configuration: each iteration runs the same pipeline as
//! the corresponding harness binary (environment reuse aside), so
//! `cargo bench` exercises Fig. 2, Fig. 5, Table II, Fig. 6, and
//! Table III in their entirety.

use metadse::experiment::{
    run_fig2, run_fig5, run_fig6, run_table2, run_table3, Environment, Scale,
};
use metadse::maml::MamlConfig;
use metadse::trendse::TrEnDseConfig;
use metadse_bench::timing::{black_box, Harness};

/// An even smaller scale than `Scale::quick`, sized for repeated bench
/// iterations.
fn bench_scale() -> Scale {
    Scale {
        samples_per_workload: 60,
        maml: MamlConfig {
            epochs: 1,
            iterations_per_epoch: 3,
            inner_steps: 2,
            val_tasks: 2,
            ..MamlConfig::tiny()
        },
        eval_tasks: 1,
        eval_support: 8,
        eval_query: 16,
        trendse: TrEnDseConfig {
            source_cap: 30,
            ..TrEnDseConfig::default()
        },
        ..Scale::quick()
    }
}

fn main() {
    let scale = bench_scale();
    let env = Environment::build(&scale, 11);
    let mut h = Harness::new().with_target_ms(400);

    h.bench("experiments/fig2_wasserstein_matrix", || {
        black_box(run_fig2(&env))
    });
    h.bench("experiments/fig5_four_frameworks", || {
        black_box(run_fig5(&env, &scale))
    });
    h.bench("experiments/table2_overall", || {
        black_box(run_table2(&env, &scale))
    });
    h.bench("experiments/fig6_upstream_sweep", || {
        black_box(run_fig6(&env, &scale, &[5, 10]))
    });
    h.bench("experiments/table3_downstream_sweep", || {
        black_box(run_table3(&env, &scale, &[5, 10]))
    });
    h.bench("experiments/environment_build_17x60", || {
        black_box(Environment::build(&scale, 12))
    });
}
