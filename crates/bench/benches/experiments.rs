//! Criterion coverage of every paper experiment's code path at a
//! seconds-scale configuration. These are *end-to-end* benches: each
//! iteration runs the same pipeline as the corresponding harness binary
//! (environment reuse aside), so `cargo bench` exercises Fig. 2, Fig. 5,
//! Table II, Fig. 6, and Table III in their entirety.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use metadse::experiment::{
    run_fig2, run_fig5, run_fig6, run_table2, run_table3, Environment, Scale,
};
use metadse::maml::MamlConfig;
use metadse::trendse::TrEnDseConfig;

/// An even smaller scale than `Scale::quick`, sized for repeated bench
/// iterations.
fn bench_scale() -> Scale {
    Scale {
        samples_per_workload: 60,
        maml: MamlConfig {
            epochs: 1,
            iterations_per_epoch: 3,
            inner_steps: 2,
            val_tasks: 2,
            ..MamlConfig::tiny()
        },
        eval_tasks: 1,
        eval_support: 8,
        eval_query: 16,
        trendse: TrEnDseConfig {
            source_cap: 30,
            ..TrEnDseConfig::default()
        },
        ..Scale::quick()
    }
}

fn bench_experiments(c: &mut Criterion) {
    let scale = bench_scale();
    let env = Environment::build(&scale, 11);

    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);

    group.bench_function("fig2_wasserstein_matrix", |b| {
        b.iter(|| black_box(run_fig2(&env)))
    });
    group.bench_function("fig5_four_frameworks", |b| {
        b.iter(|| black_box(run_fig5(&env, &scale)))
    });
    group.bench_function("table2_overall", |b| {
        b.iter(|| black_box(run_table2(&env, &scale)))
    });
    group.bench_function("fig6_upstream_sweep", |b| {
        b.iter(|| black_box(run_fig6(&env, &scale, &[5, 10])))
    });
    group.bench_function("table3_downstream_sweep", |b| {
        b.iter(|| black_box(run_table3(&env, &scale, &[5, 10])))
    });
    group.finish();
}

fn bench_environment_build(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("environment_build_17x60", |b| {
        b.iter(|| black_box(Environment::build(&scale, 12)))
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_experiments, bench_environment_build
);
criterion_main!(benches);
