//! Integration tests for the enabled observability layer.
//!
//! The registry and span store are process-global, so every test takes
//! one shared lock: tests stay order-independent and `reset` cannot fire
//! while another test is between a write and its assertion.
#![cfg(feature = "enabled")]

use std::sync::Mutex;
use std::thread;

use metadse_obs as obs;

static GLOBAL_STATE: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn concurrent_counter_increments_are_lossless() {
    let _g = lock();
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let before = obs::counter_value("test/concurrent_counter");
    thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for _ in 0..PER_THREAD {
                    obs::counter("test/concurrent_counter", 1);
                }
            });
        }
    });
    assert_eq!(
        obs::counter_value("test/concurrent_counter") - before,
        THREADS as u64 * PER_THREAD
    );
}

#[test]
fn concurrent_histogram_samples_are_lossless() {
    let _g = lock();
    thread::scope(|scope| {
        for t in 0..4 {
            scope.spawn(move || {
                for i in 0..1000 {
                    obs::histogram("test/concurrent_hist", (t * 1000 + i) as f64 + 0.5);
                }
            });
        }
    });
    let line = obs::to_jsonl()
        .lines()
        .find(|l| l.contains("\"test/concurrent_hist\""))
        .expect("histogram exported")
        .to_string();
    assert!(line.contains("\"count\":4000"), "{line}");
    assert!(line.contains("\"min\":0.5"), "{line}");
    assert!(line.contains("\"max\":3999.5"), "{line}");
}

#[test]
fn gauge_keeps_the_last_write() {
    let _g = lock();
    obs::gauge("test/gauge", 1.5);
    obs::gauge("test/gauge", -2.25);
    assert_eq!(obs::gauge_value("test/gauge"), Some(-2.25));
    assert_eq!(obs::gauge_value("test/no_such_gauge"), None);
}

#[test]
fn spans_nest_and_attribute_worker_threads() {
    let _g = lock();
    {
        let _outer = obs::span("test/outer");
        let outer_id = obs::current_span();
        assert!(outer_id.is_some());
        {
            let _inner = obs::span("test/inner");
            assert_ne!(obs::current_span(), outer_id);
        }
        thread::scope(|scope| {
            scope.spawn(move || {
                obs::set_worker(Some(3));
                obs::adopt_span(outer_id);
                {
                    // The worker tag is captured when the guard drops, so
                    // the span must close before the tag is cleared.
                    let _w = obs::span("test/worker_side");
                }
                obs::set_worker(None);
            });
        });
    }
    let jsonl = obs::to_jsonl();
    let find = |name: &str| {
        jsonl
            .lines()
            .find(|l| l.contains(&format!("\"name\":\"{name}\"")))
            .unwrap_or_else(|| panic!("span {name} exported"))
            .to_string()
    };
    let outer = find("test/outer");
    let inner = find("test/inner");
    let worker = find("test/worker_side");
    let id_of = |line: &str| {
        line.split("\"id\":")
            .nth(1)
            .and_then(|rest| rest.split(',').next())
            .expect("span line has an id")
            .to_string()
    };
    assert!(
        inner.contains(&format!("\"parent\":{}", id_of(&outer))),
        "{inner}"
    );
    assert!(
        worker.contains(&format!("\"parent\":{}", id_of(&outer))),
        "{worker}"
    );
    assert!(worker.contains("\"worker\":3"), "{worker}");
    assert!(outer.contains("\"worker\":null"), "{outer}");

    let summary = obs::summary();
    assert!(summary.contains("test/outer"), "{summary}");
    assert!(summary.contains("  test/inner"), "{summary}");
    assert!(summary.contains("w3"), "{summary}");
}

#[test]
fn reset_zeroes_metrics_and_discards_spans() {
    let _g = lock();
    obs::counter("test/reset_counter", 5);
    {
        let _s = obs::span("test/reset_span");
    }
    assert_eq!(obs::counter_value("test/reset_counter"), 5);
    obs::reset();
    assert_eq!(obs::counter_value("test/reset_counter"), 0);
    assert!(!obs::to_jsonl().contains("test/reset_span"));
    // The registration survives: the counter keeps counting after reset.
    obs::counter("test/reset_counter", 2);
    assert_eq!(obs::counter_value("test/reset_counter"), 2);
}

#[test]
fn jsonl_lines_are_wellformed_enough_to_split() {
    let _g = lock();
    obs::counter("test/jsonl \"quoted\"", 1);
    let jsonl = obs::to_jsonl();
    let line = jsonl
        .lines()
        .find(|l| l.contains("jsonl"))
        .expect("escaped counter exported");
    assert!(line.contains("\\\"quoted\\\""), "{line}");
    for l in jsonl.lines() {
        assert!(
            l.starts_with('{') && l.ends_with('}'),
            "not a JSON object: {l}"
        );
    }
}
