//! Rolling-window histogram semantics under a virtual clock: ring
//! rotation at slot boundaries, snapshot merge associativity, quantile
//! monotonicity, and concurrent-writer counts preserved across
//! rotation. The window module is always compiled (no `obs` feature
//! needed), so this suite runs in every build mode.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use metadse_obs::window::{
    WindowConfig, WindowCounter, WindowHistogram, WindowSnapshot, HIST_BUCKETS,
};

/// A 4-slot × 10 µs ring: tiny enough to cross many boundaries fast.
fn tiny() -> WindowConfig {
    WindowConfig {
        slot_us: 10,
        slots: 4,
    }
}

#[test]
fn samples_age_out_as_the_ring_rotates() {
    let h = WindowHistogram::new(tiny());
    // Three samples in slot 0 ([0, 10)).
    for v in [1.0, 2.0, 4.0] {
        assert!(h.record(v, 5));
    }
    assert_eq!(h.snapshot(5).count, 3);

    // Still visible through the last instant they are in-window: slot 0
    // remains one of the 4 trailing slots up to seq 3 (now < 40).
    assert_eq!(h.snapshot(39).count, 3);

    // One slot later the ring has moved past them.
    assert_eq!(h.snapshot(40).count, 0);

    // A fresh sample in the new window stands alone.
    assert!(h.record(8.0, 41));
    let snap = h.snapshot(41);
    assert_eq!(snap.count, 1);
    assert_eq!(snap.min(), 8.0);
    assert_eq!(snap.max(), 8.0);
}

#[test]
fn rotation_reuses_slots_without_leaking_old_counts() {
    let h = WindowHistogram::new(tiny());
    // Write into the same physical slot (index seq % 4) across three
    // ring generations; only the newest generation must survive.
    for generation in 0..3u64 {
        let now = generation * 4 * 10; // seq = 4·generation → slot index 0
        assert!(h.record((generation + 1) as f64, now));
    }
    let snap = h.snapshot(2 * 4 * 10);
    assert_eq!(snap.count, 1);
    assert_eq!(snap.min(), 3.0);
}

#[test]
fn stale_samples_are_dropped_and_counted() {
    let h = WindowHistogram::new(tiny());
    assert!(h.record(1.0, 100));
    // A recorder whose timestamp belongs to a slot the ring already
    // rotated past must not pollute a newer slot.
    assert!(!h.record(999.0, 100 - 4 * 10));
    assert_eq!(h.stale_drops(), 1);
    let snap = h.snapshot(100);
    assert_eq!(snap.count, 1);
    assert_eq!(snap.max(), 1.0);
}

#[test]
fn snapshot_merge_is_associative_and_commutative() {
    // Integer-valued samples are exactly representable in f64, so the
    // merged sums are exact and associativity holds bitwise.
    let mk = |vals: &[f64], base_us: u64| {
        let h = WindowHistogram::new(tiny());
        for &v in vals {
            assert!(h.record(v, base_us));
        }
        h.snapshot(base_us)
    };
    let a = mk(&[1.0, 7.0, 3.0], 0);
    let b = mk(&[2.0, 2.0], 5);
    let c = mk(&[1024.0, 15.0, 64.0, 9.0], 9);

    let left = a.merge(&b).merge(&c);
    let right = a.merge(&b.merge(&c));
    assert_eq!(left, right);
    assert_eq!(a.merge(&b), b.merge(&a));

    assert_eq!(left.count, 9);
    assert_eq!(
        left.sum,
        1.0 + 7.0 + 3.0 + 2.0 + 2.0 + 1024.0 + 15.0 + 64.0 + 9.0
    );
    assert_eq!(left.min, 1.0);
    assert_eq!(left.max, 1024.0);
    assert_eq!(left.buckets.iter().sum::<u64>(), 9);

    // Merging with an empty snapshot is the identity on the samples.
    let empty = WindowSnapshot::empty(tiny().window_us());
    let padded = left.merge(&empty);
    assert_eq!(padded.count, left.count);
    assert_eq!(padded.buckets, left.buckets);
    assert_eq!(padded.min, left.min);
    assert_eq!(padded.max, left.max);
}

#[test]
fn quantiles_are_monotone_in_q() {
    let h = WindowHistogram::new(tiny());
    // A spread crossing many buckets, all inside one slot.
    for i in 1..=200u32 {
        assert!(h.record(f64::from(i) * 3.0, 2));
    }
    let snap = h.snapshot(2);
    assert_eq!(snap.count, 200);
    let mut last = f64::NEG_INFINITY;
    for step in 0..=100 {
        let q = f64::from(step) / 100.0;
        let v = snap.quantile(q);
        assert!(
            v >= last,
            "quantile({q}) = {v} dropped below previous {last}"
        );
        assert!(
            (snap.min()..=snap.max()).contains(&v),
            "quantile({q}) = {v} outside observed range"
        );
        last = v;
    }
    // The low extreme is pinned by observed-min clamping; the high end
    // reports the p100 bucket's lower edge (a log2-resolution floor of
    // the true max, and still ≤ max by the clamp).
    assert_eq!(snap.quantile(0.0), snap.min());
    assert!(snap.quantile(1.0) <= snap.max());
    assert!(snap.quantile(1.0) >= snap.max() / 2.0);
}

#[test]
fn merged_quantiles_match_a_single_combined_window() {
    let combined = WindowHistogram::new(tiny());
    let part_a = WindowHistogram::new(tiny());
    let part_b = WindowHistogram::new(tiny());
    for i in 1..=60u32 {
        let v = f64::from(i) * 5.0;
        assert!(combined.record(v, 3));
        if i % 2 == 0 {
            assert!(part_a.record(v, 3));
        } else {
            assert!(part_b.record(v, 3));
        }
    }
    let whole = combined.snapshot(3);
    let merged = part_a.snapshot(3).merge(&part_b.snapshot(3));
    assert_eq!(whole, merged);
    for q in [0.5, 0.9, 0.99] {
        assert_eq!(whole.quantile(q), merged.quantile(q));
    }
}

#[test]
fn concurrent_writers_lose_nothing_across_rotation() {
    const WRITERS: usize = 8;
    const PER_WRITER: u64 = 500;

    let h = Arc::new(WindowHistogram::new(WindowConfig {
        slot_us: 10,
        slots: 8,
    }));
    // A shared virtual clock that sweeps forward as writers record, so
    // rotations happen *while* other threads are mid-record on the same
    // slots.
    let clock = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(WRITERS));
    let recorded: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                let h = Arc::clone(&h);
                let clock = Arc::clone(&clock);
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    let mut ok = 0u64;
                    for i in 0..PER_WRITER {
                        // Each tick advances the clock ~every few
                        // records; timestamps may arrive slightly stale
                        // relative to other writers' advances.
                        let now = clock.fetch_add(1, Ordering::Relaxed) / 3;
                        if h.record((w as u64 * PER_WRITER + i + 1) as f64, now) {
                            ok += 1;
                        }
                    }
                    ok
                })
            })
            .collect();
        handles.into_iter().map(|j| j.join().unwrap()).sum()
    });

    // Every sample is either recorded or counted as a stale drop —
    // rotation never silently loses one.
    assert_eq!(recorded + h.stale_drops(), (WRITERS as u64) * PER_WRITER);

    // The clock advanced (WRITERS·PER_WRITER)/3 µs total; with 8×10 µs
    // slots the trailing window covers the last 80 µs. Snapshot at the
    // final instant and check it is internally consistent.
    let now = clock.load(Ordering::Relaxed) / 3;
    let snap = h.snapshot(now);
    assert!(snap.count > 0);
    assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
    assert!(snap.count <= recorded);
    assert!(snap.buckets.len() == HIST_BUCKETS);
}

#[test]
fn window_counter_rotates_and_rates() {
    let c = WindowCounter::new(tiny());
    assert!(c.add(5, 0));
    assert!(c.add(7, 15));
    assert_eq!(c.total(15), 12);
    // Window is 40 µs: at t=39 slot 0 is still in-window, at 45 not.
    assert_eq!(c.total(39), 12);
    assert_eq!(c.total(45), 7);
    assert_eq!(c.total(100), 0);
    // t=50 (seq 5) reuses the physical slot that held seq 1: the slot
    // seals, zeroes, and re-stamps, so only the new delta is visible…
    assert!(c.add(1, 50));
    assert_eq!(c.total(50), 1);
    // …and a late add stamped for the sealed generation is refused.
    assert!(!c.add(1, 15));
    assert_eq!(c.total(50), 1);
    // rate = total / window-span-seconds = 1 / 40e-6 s.
    let rate = c.rate_per_sec(50);
    assert!((rate - 1.0 / 40e-6).abs() < 1e-6, "rate {rate}");
}
