//! Property suite for the shared length-prefixed frame codec
//! (`metadse_obs::frame`), the wire substrate under the introspection
//! endpoint, the serving front door, and the shard worker protocol.
//!
//! The properties a multi-process serving fabric leans on:
//!
//! * **round trip** — encode∘decode is the identity for any payload up
//!   to `MAX_FRAME`, including zero-length frames;
//! * **total truncation rejection** — a frame cut at *every* byte
//!   prefix fails with `UnexpectedEof`, never a partial payload or a
//!   hang;
//! * **oversize rejection** — a length prefix beyond `MAX_FRAME` is
//!   refused before any payload allocation; oversize writes are refused
//!   before any byte reaches the wire;
//! * **reassembly** — a reader delivering 1..=7-byte chunks (kernel
//!   buffer boundaries, slow peers) reassembles every frame exactly;
//! * **streaming** — back-to-back frames on one stream decode in order
//!   with no framing drift.

use std::io::{self, Read};

use metadse_obs::frame::{read_frame, write_frame, MAX_FRAME};

/// Deterministic corpus: payload shapes chosen to straddle the length
/// prefix (0), single bytes, prefix-sized (4), typical commands, binary
/// with embedded NULs and 0xFF, and a large frame near the cap.
fn corpus() -> Vec<Vec<u8>> {
    let mut c: Vec<Vec<u8>> = vec![
        vec![],
        vec![0x00],
        vec![0xFF],
        b"ok".to_vec(),
        b"ping".to_vec(),
        b"health".to_vec(),
        (0u8..=255).collect(),
        vec![0u8; 4],
        vec![0xAB; 1 << 10],
    ];
    // A payload whose first four bytes decode as an enormous length —
    // framing must never be confused by payload content.
    let mut evil = (u32::MAX).to_le_bytes().to_vec();
    evil.extend_from_slice(b"payload bytes that look like a length");
    c.push(evil);
    c
}

/// A reader that hands out at most `chunk` bytes per `read` call.
struct Chunked<'a> {
    data: &'a [u8],
    pos: usize,
    chunk: usize,
}

impl Read for Chunked<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = buf.len().min(self.chunk).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[test]
fn every_corpus_payload_round_trips() {
    for payload in corpus() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        assert_eq!(wire.len(), 4 + payload.len());
        assert_eq!(&wire[..4], &(payload.len() as u32).to_le_bytes());
        let back = read_frame(&mut &wire[..]).unwrap();
        assert_eq!(back, payload);
    }
}

#[test]
fn truncation_at_every_byte_prefix_is_rejected() {
    for payload in corpus() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        for cut in 0..wire.len() {
            let err = read_frame(&mut &wire[..cut]).expect_err("torn frame must not decode");
            assert_eq!(
                err.kind(),
                io::ErrorKind::UnexpectedEof,
                "cut at byte {cut} of a {}-byte frame",
                wire.len()
            );
        }
    }
}

#[test]
fn split_reads_reassemble_every_frame() {
    for payload in corpus() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        for chunk in 1..=7 {
            let mut r = Chunked {
                data: &wire,
                pos: 0,
                chunk,
            };
            assert_eq!(
                read_frame(&mut r).unwrap(),
                payload,
                "chunk size {chunk} must reassemble"
            );
        }
    }
}

#[test]
fn zero_length_frames_interleave_with_data_frames() {
    // Framing must not drift across empty frames on a shared stream.
    let frames: Vec<&[u8]> = vec![b"", b"a", b"", b"", b"final"];
    let mut wire = Vec::new();
    for f in &frames {
        write_frame(&mut wire, f).unwrap();
    }
    let mut r: &[u8] = &wire;
    for f in &frames {
        assert_eq!(read_frame(&mut r).unwrap(), *f);
    }
    assert_eq!(
        read_frame(&mut r).unwrap_err().kind(),
        io::ErrorKind::UnexpectedEof,
        "stream exhausted exactly at the last frame boundary"
    );
}

#[test]
fn oversize_length_prefixes_reject_before_allocating() {
    // Every length strictly beyond MAX_FRAME must be InvalidData, even
    // when the wire carries no payload at all — the check precedes the
    // allocation, so a hostile 4-byte frame cannot OOM the reader.
    for len in [
        MAX_FRAME as u64 + 1,
        MAX_FRAME as u64 * 2,
        u64::from(u32::MAX),
    ] {
        let prefix = (len as u32).to_le_bytes();
        let err = read_frame(&mut &prefix[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "length {len}");
    }
    // The boundary itself is legal.
    let mut wire = Vec::new();
    write_frame(&mut wire, &vec![7u8; MAX_FRAME]).unwrap();
    assert_eq!(read_frame(&mut &wire[..]).unwrap().len(), MAX_FRAME);
}

#[test]
fn oversize_writes_leave_the_wire_untouched() {
    let mut wire = Vec::new();
    let err = write_frame(&mut wire, &vec![0u8; MAX_FRAME + 1]).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    assert!(
        wire.is_empty(),
        "a refused frame must not half-write a length prefix"
    );
}

#[test]
fn back_to_back_frames_decode_in_order() {
    let corpus = corpus();
    let mut wire = Vec::new();
    for payload in &corpus {
        write_frame(&mut wire, payload).unwrap();
    }
    // Whole-stream reassembly under a pathological 1-byte reader.
    let mut r = Chunked {
        data: &wire,
        pos: 0,
        chunk: 1,
    };
    for payload in &corpus {
        assert_eq!(&read_frame(&mut r).unwrap(), payload);
    }
}
