//! Shared length-prefixed frame codec.
//!
//! One wire format, used by every hand-rolled socket protocol in the
//! workspace — the introspection endpoint ([`crate::introspect`]), the
//! serving front door, and the shard worker protocol (`metadse-serve`):
//!
//! ```text
//! frame := len:u32-le payload:[len bytes]        (len ≤ MAX_FRAME)
//! ```
//!
//! The codec is deliberately tiny and total: a frame either round-trips
//! exactly or fails with a typed `io::Error` — `InvalidInput` for an
//! oversize write, `InvalidData` for a length prefix beyond
//! [`MAX_FRAME`] (rejected *before* allocating), and `UnexpectedEof`
//! for a frame torn at any byte. Reads are `read_exact`-based, so
//! split/partial delivery (a peer writing one byte at a time, a kernel
//! buffer boundary mid-prefix) reassembles transparently; the property
//! suite in `tests/frame.rs` drives truncation at every byte prefix and
//! 1-byte-chunk readers over a corpus that includes zero-length frames.

use std::io::{self, Read, Write};

/// Upper bound on a single frame payload (1 MiB): large enough for any
/// metrics exposition or shard batch, small enough to reject a garbage
/// length prefix before allocating.
pub const MAX_FRAME: usize = 1 << 20;

/// Writes one length-prefixed frame to `w`.
///
/// # Errors
///
/// Returns `InvalidInput` when `payload` exceeds [`MAX_FRAME`], or any
/// underlying I/O error.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame from `r`.
///
/// # Errors
///
/// Returns `InvalidData` on a length prefix beyond [`MAX_FRAME`],
/// `UnexpectedEof` on a torn frame, or any underlying I/O error.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"health").unwrap();
        assert_eq!(&buf[..4], &6u32.to_le_bytes());
        let back = read_frame(&mut &buf[..]).unwrap();
        assert_eq!(back, b"health");
    }

    #[test]
    fn zero_length_frame_round_trips() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"").unwrap();
        assert_eq!(buf, 0u32.to_le_bytes());
        assert_eq!(read_frame(&mut &buf[..]).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn frame_rejects_oversize_and_torn() {
        let mut sink = Vec::new();
        let big = vec![0u8; MAX_FRAME + 1];
        assert_eq!(
            write_frame(&mut sink, &big).unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );
        assert!(sink.is_empty(), "nothing written before the size check");

        let bad_len = (MAX_FRAME as u32 + 1).to_le_bytes();
        assert_eq!(
            read_frame(&mut &bad_len[..]).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );

        let mut torn = Vec::new();
        write_frame(&mut torn, b"metrics").unwrap();
        torn.truncate(torn.len() - 3);
        assert_eq!(
            read_frame(&mut &torn[..]).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }
}
