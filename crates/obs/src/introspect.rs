//! Hermetic introspection transport: a unix-socket listener speaking a
//! hand-rolled length-prefixed frame protocol, plus the matching client.
//!
//! No external dependencies, no HTTP: the workspace's hermetic-build
//! constraint rules out hyper/axum, and the consumers (CI smoke steps,
//! soak tests, the `metadse-introspect` bin) only need request/response
//! over a local socket. Framing comes from the shared [`crate::frame`]
//! codec; the protocol on top of it is deliberately tiny:
//!
//! ```text
//! frame    := len:u32-le payload:[len bytes]          (len ≤ 1 MiB)
//! request  := frame of a UTF-8 command, e.g. "health", "trace?id=7"
//! response := frame of "ok\n<body>" or "err\n<message>"
//! ```
//!
//! One request frame per connection round-trip; connections may be
//! reused for further round-trips or dropped at will. The listener is a
//! plain thread in a nonblocking accept loop with a stop flag — no
//! async runtime — sized for a handful of probes per second, not for
//! request traffic (the serving data path never goes through it).
//!
//! This module is transport only. What the commands *mean* is decided
//! by the embedding server through the [`Respond`] trait; the obs crate
//! stays ignorant of serving concepts.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

// The frame codec lives in [`crate::frame`] (it is shared with the
// serving shard protocol); re-exported here so existing
// `obs::introspect::{read_frame, write_frame, MAX_FRAME}` callers keep
// compiling unchanged.
pub use crate::frame::{read_frame, write_frame, MAX_FRAME};

/// One introspection reply: success flag plus a UTF-8 body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// `true` → encoded as `ok\n<body>`, `false` → `err\n<body>`.
    pub ok: bool,
    /// Human- and machine-readable payload (plain text, one concern per
    /// line by convention).
    pub body: String,
}

impl Response {
    /// A success reply.
    pub fn ok(body: impl Into<String>) -> Response {
        Response {
            ok: true,
            body: body.into(),
        }
    }

    /// An error reply.
    pub fn err(body: impl Into<String>) -> Response {
        Response {
            ok: false,
            body: body.into(),
        }
    }

    /// Wire encoding: status line marker + `\n` + body.
    pub fn encode(&self) -> Vec<u8> {
        let status = if self.ok { "ok" } else { "err" };
        let mut out = Vec::with_capacity(status.len() + 1 + self.body.len());
        out.extend_from_slice(status.as_bytes());
        out.push(b'\n');
        out.extend_from_slice(self.body.as_bytes());
        out
    }

    /// Parses a wire payload back into a response.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a malformed status line or non-UTF-8
    /// body.
    pub fn decode(payload: &[u8]) -> io::Result<Response> {
        let text = std::str::from_utf8(payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let (status, body) = text.split_once('\n').unwrap_or((text, ""));
        match status {
            "ok" => Ok(Response::ok(body)),
            "err" => Ok(Response::err(body)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad response status {other:?}"),
            )),
        }
    }
}

/// Command handler plugged into a [`Listener`]. Implementations must be
/// cheap and non-blocking — they run on the single listener thread.
pub trait Respond: Send + Sync + 'static {
    /// Answers one command (the request frame's UTF-8 payload).
    fn respond(&self, command: &str) -> Response;
}

impl<F> Respond for F
where
    F: Fn(&str) -> Response + Send + Sync + 'static,
{
    fn respond(&self, command: &str) -> Response {
        self(command)
    }
}

#[cfg(unix)]
pub use unix_impl::{query, serve_unix, Listener};

#[cfg(unix)]
mod unix_impl {
    use super::*;
    use std::os::unix::net::{UnixListener, UnixStream};

    /// How long the accept loop sleeps when idle, and the per-stream
    /// read timeout bounding how long one slow client can hold the
    /// listener thread.
    const POLL_INTERVAL: Duration = Duration::from_millis(1);
    const CLIENT_TIMEOUT: Duration = Duration::from_millis(500);

    /// A running introspection listener. Dropping it (or calling
    /// [`shutdown`](Listener::shutdown)) stops the thread and removes
    /// the socket file.
    pub struct Listener {
        path: PathBuf,
        stop: Arc<AtomicBool>,
        thread: Option<std::thread::JoinHandle<()>>,
    }

    impl std::fmt::Debug for Listener {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Listener")
                .field("path", &self.path)
                .finish()
        }
    }

    impl Listener {
        /// The socket path this listener is bound to.
        pub fn path(&self) -> &Path {
            &self.path
        }

        /// Stops the accept loop, joins the thread, and removes the
        /// socket file. Idempotent.
        pub fn shutdown(&mut self) {
            self.stop.store(true, Ordering::Release);
            if let Some(t) = self.thread.take() {
                let _ = t.join();
            }
            let _ = std::fs::remove_file(&self.path);
        }
    }

    impl Drop for Listener {
        fn drop(&mut self) {
            self.shutdown();
        }
    }

    /// Binds `path` and serves `responder` on a background thread.
    ///
    /// A stale socket file at `path` is removed first (unix sockets do
    /// not unlink themselves when their process dies).
    ///
    /// # Errors
    ///
    /// Returns any bind error.
    pub fn serve_unix(path: &Path, responder: Arc<dyn Respond>) -> io::Result<Listener> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("metadse-introspect".to_string())
            .spawn(move || accept_loop(&listener, &responder, &stop_flag))?;
        Ok(Listener {
            path: path.to_path_buf(),
            stop,
            thread: Some(thread),
        })
    }

    fn accept_loop(listener: &UnixListener, responder: &Arc<dyn Respond>, stop: &AtomicBool) {
        while !stop.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((stream, _)) => serve_client(stream, responder, stop),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                // Transient accept errors (e.g. ECONNABORTED) — keep going.
                Err(_) => std::thread::sleep(POLL_INTERVAL),
            }
        }
    }

    fn serve_client(mut stream: UnixStream, responder: &Arc<dyn Respond>, stop: &AtomicBool) {
        let _ = stream.set_read_timeout(Some(CLIENT_TIMEOUT));
        let _ = stream.set_write_timeout(Some(CLIENT_TIMEOUT));
        // Serve round-trips until the client hangs up, errors, times
        // out, or the listener is asked to stop.
        while !stop.load(Ordering::Acquire) {
            let request = match read_frame(&mut stream) {
                Ok(payload) => payload,
                Err(_) => return,
            };
            let response = match std::str::from_utf8(&request) {
                Ok(command) => responder.respond(command.trim()),
                Err(_) => Response::err("request is not UTF-8"),
            };
            if write_frame(&mut stream, &response.encode()).is_err() {
                return;
            }
        }
    }

    /// One client round-trip: connect to `path`, send `command`, read
    /// the reply.
    ///
    /// # Errors
    ///
    /// Returns connection, frame, or decode errors.
    pub fn query(path: &Path, command: &str) -> io::Result<Response> {
        let mut stream = UnixStream::connect(path)?;
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        stream.set_write_timeout(Some(Duration::from_secs(5)))?;
        write_frame(&mut stream, command.as_bytes())?;
        Response::decode(&read_frame(&mut stream)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_round_trip() {
        for r in [Response::ok("body\nlines"), Response::err("nope")] {
            assert_eq!(Response::decode(&r.encode()).unwrap(), r);
        }
        assert!(Response::decode(b"weird\nbody").is_err());
    }

    #[cfg(unix)]
    #[test]
    fn listener_round_trip_and_shutdown() {
        let dir = std::env::temp_dir().join(format!("metadse-introspect-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("t.sock");
        let mut listener = serve_unix(
            &sock,
            Arc::new(|cmd: &str| {
                if cmd == "ping" {
                    Response::ok("pong")
                } else {
                    Response::err(format!("unknown command {cmd:?}"))
                }
            }),
        )
        .unwrap();

        let reply = query(&sock, "ping").unwrap();
        assert!(reply.ok);
        assert_eq!(reply.body, "pong");
        let reply = query(&sock, "nope").unwrap();
        assert!(!reply.ok);

        listener.shutdown();
        assert!(!sock.exists());
        assert!(query(&sock, "ping").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
