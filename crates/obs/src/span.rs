//! Hierarchical scoped spans.
//!
//! A span is an RAII guard: [`enter`] captures the start time and the
//! enclosing span (this thread's innermost open span, or a parent adopted
//! from another thread via [`adopt`] — how fan-out workers nest under the
//! caller), and dropping the guard appends one immutable [`SpanRecord`]
//! to the global trace. Start times are nanoseconds since the process's
//! first span, so records from different threads share one clock.
//!
//! The per-thread state is a plain `Vec` stack in a thread-local; the
//! only cross-thread synchronization is the record push at span end —
//! spans mark *scopes*, not per-element work, so that mutex is cold.

use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SpanRecord {
    /// Unique id (allocation order).
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Span name (`component/event`).
    pub name: String,
    /// Start, in nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Fan-out worker id of the recording thread (`None` = main).
    pub worker: Option<usize>,
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn records() -> &'static Mutex<Vec<SpanRecord>> {
    static RECORDS: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();
    RECORDS.get_or_init(|| Mutex::new(Vec::new()))
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static INHERITED: Cell<Option<u64>> = const { Cell::new(None) };
    static WORKER: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The span guard. `!Send`: a span must end on the thread that opened it
/// (the thread-local stack tracks nesting).
#[must_use = "a span measures the scope of its guard; binding it to _ ends it immediately"]
pub struct Span {
    id: u64,
    parent: Option<u64>,
    name: String,
    start: Instant,
    start_ns: u64,
    _not_send: PhantomData<*const ()>,
}

pub(crate) fn enter(name: &str) -> Span {
    let start = Instant::now();
    let start_ns = start.duration_since(epoch()).as_nanos() as u64;
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let parent = stack.last().copied().or_else(|| INHERITED.get());
        stack.push(id);
        parent
    });
    Span {
        id,
        parent,
        name: name.to_string(),
        start,
        start_ns,
        _not_send: PhantomData,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur_ns = self.start.elapsed().as_nanos() as u64;
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            debug_assert_eq!(stack.last(), Some(&self.id), "span drop order violated");
            stack.retain(|&id| id != self.id);
        });
        let record = SpanRecord {
            id: self.id,
            parent: self.parent,
            name: std::mem::take(&mut self.name),
            start_ns: self.start_ns,
            dur_ns,
            worker: WORKER.get(),
        };
        records()
            .lock()
            .expect("span records poisoned")
            .push(record);
    }
}

pub(crate) fn current() -> Option<u64> {
    STACK.with(|s| s.borrow().last().copied())
}

pub(crate) fn adopt(parent: Option<u64>) {
    INHERITED.set(parent);
}

pub(crate) fn set_worker(id: Option<usize>) {
    WORKER.set(id);
}

pub(crate) fn worker() -> Option<usize> {
    WORKER.get()
}

/// Clones the finished-span trace (creation order of span *ends*).
pub(crate) fn finished() -> Vec<SpanRecord> {
    records().lock().expect("span records poisoned").clone()
}

/// Discards all finished spans. Open spans on other threads still record
/// when they drop.
pub(crate) fn reset() {
    records().lock().expect("span records poisoned").clear();
}
