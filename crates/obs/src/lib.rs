//! # metadse-obs
//!
//! Observability substrate for the MetaDSE workspace: hierarchical scoped
//! spans with wall-clock timing and worker-thread attribution, a
//! lock-light metrics registry (counters, gauges, fixed log-scale-bucket
//! histograms), JSON-lines trace export, and a human-readable end-of-run
//! summary. A shared [`report`] sink gives every harness binary one place
//! to print through.
//!
//! ## Zero overhead by construction
//!
//! The whole instrumentation API is feature-gated on `enabled`. With the
//! feature **off** (the default), [`span`], [`counter`], [`gauge`],
//! [`histogram`], and [`with`] are inlined empty functions — the compiler
//! removes the calls *and* any argument computation feeding them, so an
//! instrumented hot path compiles to exactly the uninstrumented machine
//! code. With the feature **on**, metrics are single atomic operations
//! behind a read-locked registry lookup and spans are two `Instant` reads
//! plus one mutex push at scope exit.
//!
//! Nothing in this crate draws randomness or feeds values back into the
//! instrumented computation, so enabling it cannot perturb RNG streams or
//! the bit-exact determinism of the parallel execution layer — a property
//! the workspace's determinism regression tests assert directly.
//!
//! ## Naming scheme
//!
//! Metric and span names follow `component/event` (e.g.
//! `nn/matmul_flops`, `maml/pretrain`, `parallel/serial_cutoff`), so the
//! summary and the JSONL export group naturally by subsystem.
//!
//! ## Example
//!
//! ```
//! {
//!     let _root = metadse_obs::span("demo/run");
//!     metadse_obs::counter("demo/items", 3);
//!     metadse_obs::histogram("demo/latency_ns", 1500.0);
//! }
//! // With the `enabled` feature on, these now describe the run:
//! let _tree = metadse_obs::summary();
//! let _lines = metadse_obs::to_jsonl();
//! ```

pub mod frame;
pub mod introspect;
pub mod report;
pub mod window;

#[cfg(feature = "enabled")]
mod metrics;
#[cfg(feature = "enabled")]
mod sink;
#[cfg(feature = "enabled")]
mod span;

/// Writes `contents` to `path` atomically: temp file in the same
/// directory → write → flush → fsync → rename. Readers never observe a
/// torn artifact; a crash leaves at worst an orphaned `.{name}.tmp-pid`.
///
/// (A copy of `metadse_nn::format::atomic_write` — obs sits below nn in
/// the dependency graph, so it cannot borrow nn's helper.)
///
/// # Errors
///
/// Returns any underlying I/O error; the temp file is removed
/// best-effort on failure.
pub fn atomic_write(path: &std::path::Path, contents: &[u8]) -> std::io::Result<()> {
    use std::io::Write as _;

    let dir = path.parent().unwrap_or_else(|| std::path::Path::new("."));
    let file_name = path.file_name().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("atomic_write target {} has no file name", path.display()),
        )
    })?;
    let tmp = dir.join(format!(
        ".{}.tmp-{}",
        file_name.to_string_lossy(),
        std::process::id()
    ));
    let write = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents)?;
        f.flush()?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if write.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    write
}

#[cfg(feature = "enabled")]
mod api {
    use std::io;
    use std::path::Path;

    use crate::span as span_mod;
    use crate::{metrics, sink};

    /// Whether instrumentation is compiled in.
    pub const fn enabled() -> bool {
        true
    }

    /// The RAII guard returned by [`span`]; the span ends when it drops.
    pub type Span = span_mod::Span;

    /// Opens a scoped span named `name` (convention: `component/event`).
    /// The span nests under the innermost open span of this thread — or,
    /// on a fan-out worker, under the parent adopted via [`adopt_span`] —
    /// and records its wall-clock duration and worker attribution when
    /// the returned guard drops.
    #[must_use = "a span measures the scope of its guard; binding it to _ ends it immediately"]
    pub fn span(name: &str) -> Span {
        span_mod::enter(name)
    }

    /// Adds `delta` to the counter `name`, registering it on first use.
    pub fn counter(name: &str, delta: u64) {
        metrics::counter_add(name, delta);
    }

    /// Sets the gauge `name` to `value` (last write wins).
    pub fn gauge(name: &str, value: f64) {
        metrics::gauge_set(name, value);
    }

    /// Records `value` into the log-scale histogram `name`.
    pub fn histogram(name: &str, value: f64) {
        metrics::histogram_record(name, value);
    }

    /// Runs `f` — used to guard *derived* metric computation (norms,
    /// entropies) that would otherwise burn cycles for nothing when
    /// instrumentation is compiled out.
    pub fn with<F: FnOnce()>(f: F) {
        f();
    }

    /// The id of this thread's innermost open span, if any.
    pub fn current_span() -> Option<u64> {
        span_mod::current()
    }

    /// Declares `parent` the enclosing span for spans subsequently opened
    /// on *this* thread while its own span stack is empty. The parallel
    /// fan-out layer calls this on workers so their spans nest under the
    /// caller's span.
    pub fn adopt_span(parent: Option<u64>) {
        span_mod::adopt(parent);
    }

    /// Tags this thread with a fan-out worker id (`None` = main thread);
    /// span records carry the tag for thread attribution.
    pub fn set_worker(id: Option<usize>) {
        span_mod::set_worker(id);
    }

    /// This thread's worker tag.
    pub fn worker_id() -> Option<usize> {
        span_mod::worker()
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter_value(name: &str) -> u64 {
        metrics::counter_value(name)
    }

    /// Current value of gauge `name`.
    pub fn gauge_value(name: &str) -> Option<f64> {
        metrics::gauge_value(name)
    }

    /// Zeroes every registered metric and discards all span records.
    /// Metric registrations survive (handles stay valid); only values
    /// reset.
    pub fn reset() {
        metrics::reset();
        span_mod::reset();
    }

    /// Renders the end-of-run report: the aggregated span tree (calls,
    /// total and mean wall time per path) followed by metric tables.
    pub fn summary() -> String {
        sink::summary()
    }

    /// Serializes every span record and metric as JSON lines.
    pub fn to_jsonl() -> String {
        sink::to_jsonl()
    }

    /// Writes [`to_jsonl`] to `path` atomically (temp→fsync→rename), so
    /// a crash mid-export never leaves a torn trace file.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn write_jsonl(path: &Path) -> io::Result<()> {
        crate::atomic_write(path, sink::to_jsonl().as_bytes())
    }

    /// Plain-text exposition of every registered metric, one per line:
    /// `counter <name> <value>`, `gauge <name> <value>`, and
    /// `histogram <name> count <n> mean <m> p50 <q> p99 <q> min <a>
    /// max <b>` — the lifetime-cumulative section of the introspection
    /// endpoint's `metrics` reply.
    pub fn exposition() -> String {
        let snap = metrics::snapshot();
        let mut out = String::new();
        for (name, v) in &snap.counters {
            out.push_str(&format!("counter {name} {v}\n"));
        }
        for (name, v) in &snap.gauges {
            out.push_str(&format!("gauge {name} {v}\n"));
        }
        for h in &snap.histograms {
            out.push_str(&format!(
                "histogram {} count {} mean {} p50 {} p99 {} min {} max {}\n",
                h.name,
                h.count,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
                if h.count == 0 { 0.0 } else { h.min },
                if h.count == 0 { 0.0 } else { h.max },
            ));
        }
        out
    }
}

#[cfg(not(feature = "enabled"))]
mod api {
    use std::io;
    use std::path::Path;

    /// Whether instrumentation is compiled in.
    pub const fn enabled() -> bool {
        false
    }

    /// Zero-sized stand-in for the span guard; holding it costs nothing.
    #[derive(Debug, Clone, Copy)]
    pub struct Span;

    /// No-op: compiles to nothing.
    #[inline(always)]
    #[must_use = "a span measures the scope of its guard; binding it to _ ends it immediately"]
    pub fn span(_name: &str) -> Span {
        Span
    }

    /// No-op: compiles to nothing.
    #[inline(always)]
    pub fn counter(_name: &str, _delta: u64) {}

    /// No-op: compiles to nothing.
    #[inline(always)]
    pub fn gauge(_name: &str, _value: f64) {}

    /// No-op: compiles to nothing.
    #[inline(always)]
    pub fn histogram(_name: &str, _value: f64) {}

    /// No-op: `f` is never called, so derived-metric computation guarded
    /// by `with` is compiled out along with the instrumentation.
    #[inline(always)]
    pub fn with<F: FnOnce()>(_f: F) {}

    /// Always `None` when instrumentation is compiled out.
    #[inline(always)]
    pub fn current_span() -> Option<u64> {
        None
    }

    /// No-op: compiles to nothing.
    #[inline(always)]
    pub fn adopt_span(_parent: Option<u64>) {}

    /// No-op: compiles to nothing.
    #[inline(always)]
    pub fn set_worker(_id: Option<usize>) {}

    /// Always `None` when instrumentation is compiled out.
    #[inline(always)]
    pub fn worker_id() -> Option<usize> {
        None
    }

    /// Always 0 when instrumentation is compiled out.
    #[inline(always)]
    pub fn counter_value(_name: &str) -> u64 {
        0
    }

    /// Always `None` when instrumentation is compiled out.
    #[inline(always)]
    pub fn gauge_value(_name: &str) -> Option<f64> {
        None
    }

    /// No-op: compiles to nothing.
    #[inline(always)]
    pub fn reset() {}

    /// Explains that instrumentation is compiled out.
    pub fn summary() -> String {
        "observability disabled (build with --features obs)\n".to_string()
    }

    /// Empty: no records exist without the `enabled` feature.
    pub fn to_jsonl() -> String {
        String::new()
    }

    /// Writes an empty trace so downstream tooling finds the file —
    /// atomically, matching the enabled build's crash discipline.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn write_jsonl(path: &Path) -> io::Result<()> {
        crate::atomic_write(path, b"")
    }

    /// Empty: no metrics exist without the `enabled` feature.
    pub fn exposition() -> String {
        String::new()
    }
}

pub use api::*;
