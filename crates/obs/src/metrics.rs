//! Lock-light metrics registry.
//!
//! Every metric is a named cell of atomics. The hot path — bumping a
//! counter, setting a gauge, recording a histogram sample — takes the
//! registry's `RwLock` in *read* mode (shared, uncontended between
//! concurrent recorders) and then performs plain atomic operations; the
//! write lock is only taken the first time a name is seen. No recording
//! operation allocates after registration, draws randomness, or blocks on
//! another recorder, which is what makes the instrumentation safe to put
//! inside deterministic parallel fan-outs.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

// The bucket layout is shared with the always-compiled rolling-window
// module so windowed and lifetime histograms bucket identically.
#[cfg(test)]
pub(crate) use crate::window::HIST_MIN_EXP;
pub(crate) use crate::window::{bucket_hi, bucket_index, bucket_lo, HIST_BUCKETS};

/// Histogram storage: per-bucket hit counts plus streaming count / sum /
/// min / max, all lock-free.
pub(crate) struct Hist {
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Hist {
    fn new() -> Hist {
        Hist {
            counts: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    fn record(&self, value: f64) {
        self.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_update(&self.sum_bits, |s| s + value);
        atomic_f64_update(&self.min_bits, |m| m.min(value));
        atomic_f64_update(&self.max_bits, |m| m.max(value));
    }

    fn zero(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0.0f64.to_bits(), Ordering::Relaxed);
        self.min_bits
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }
}

/// CAS loop applying `f` to an `f64` stored as bits in an `AtomicU64`.
fn atomic_f64_update(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(current)).to_bits();
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(observed) => current = observed,
        }
    }
}

/// One registered metric.
pub(crate) enum Metric {
    Counter(AtomicU64),
    Gauge(AtomicU64),
    Histogram(Hist),
}

type Registry = RwLock<BTreeMap<String, Arc<Metric>>>;

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(BTreeMap::new()))
}

/// Fetches the metric `name`, registering it with `make` on first use.
/// A name registered as one kind stays that kind; a mismatched operation
/// on it is ignored (debug builds assert).
fn get_or_register(name: &str, make: impl FnOnce() -> Metric) -> Arc<Metric> {
    if let Some(m) = registry()
        .read()
        .expect("metrics registry poisoned")
        .get(name)
    {
        return Arc::clone(m);
    }
    let mut map = registry().write().expect("metrics registry poisoned");
    Arc::clone(
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(make())),
    )
}

pub(crate) fn counter_add(name: &str, delta: u64) {
    let metric = get_or_register(name, || Metric::Counter(AtomicU64::new(0)));
    match &*metric {
        Metric::Counter(c) => {
            c.fetch_add(delta, Ordering::Relaxed);
        }
        _ => debug_assert!(false, "metric {name} is not a counter"),
    }
}

pub(crate) fn gauge_set(name: &str, value: f64) {
    let metric = get_or_register(name, || Metric::Gauge(AtomicU64::new(0.0f64.to_bits())));
    match &*metric {
        Metric::Gauge(g) => g.store(value.to_bits(), Ordering::Relaxed),
        _ => debug_assert!(false, "metric {name} is not a gauge"),
    }
}

pub(crate) fn histogram_record(name: &str, value: f64) {
    let metric = get_or_register(name, || Metric::Histogram(Hist::new()));
    match &*metric {
        Metric::Histogram(h) => h.record(value),
        _ => debug_assert!(false, "metric {name} is not a histogram"),
    }
}

pub(crate) fn counter_value(name: &str) -> u64 {
    match registry()
        .read()
        .expect("metrics registry poisoned")
        .get(name)
        .map(Arc::clone)
    {
        Some(m) => match &*m {
            Metric::Counter(c) => c.load(Ordering::Relaxed),
            _ => 0,
        },
        None => 0,
    }
}

pub(crate) fn gauge_value(name: &str) -> Option<f64> {
    let m = registry()
        .read()
        .expect("metrics registry poisoned")
        .get(name)
        .map(Arc::clone)?;
    match &*m {
        Metric::Gauge(g) => Some(f64::from_bits(g.load(Ordering::Relaxed))),
        _ => None,
    }
}

/// Zeroes every metric in place. Registrations (and any handles held by
/// recorders mid-flight) stay valid.
pub(crate) fn reset() {
    for metric in registry()
        .read()
        .expect("metrics registry poisoned")
        .values()
    {
        match &**metric {
            Metric::Counter(c) => c.store(0, Ordering::Relaxed),
            Metric::Gauge(g) => g.store(0.0f64.to_bits(), Ordering::Relaxed),
            Metric::Histogram(h) => h.zero(),
        }
    }
}

// ------------------------------------------------------------------
// Snapshots (read side, used by the sinks)
// ------------------------------------------------------------------

/// Point-in-time value of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct HistogramSnapshot {
    pub name: String,
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    /// `(bucket_lo, bucket_hi, hits)` for non-empty buckets only.
    pub buckets: Vec<(f64, f64, u64)>,
}

impl HistogramSnapshot {
    /// Approximate quantile from the bucket edges: the lower edge of the
    /// bucket holding the `q`-th sample (clamped by observed min/max).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(lo, _, hits) in &self.buckets {
            seen += hits;
            if seen >= rank {
                return lo.clamp(self.min.min(self.max), self.max.max(self.min));
            }
        }
        self.max
    }

    /// Mean of all recorded samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Point-in-time values of all registered metrics, sorted by name.
#[derive(Debug, Clone, Default)]
pub(crate) struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<HistogramSnapshot>,
}

pub(crate) fn snapshot() -> MetricsSnapshot {
    let mut out = MetricsSnapshot::default();
    for (name, metric) in registry().read().expect("metrics registry poisoned").iter() {
        match &**metric {
            Metric::Counter(c) => out.counters.push((name.clone(), c.load(Ordering::Relaxed))),
            Metric::Gauge(g) => out
                .gauges
                .push((name.clone(), f64::from_bits(g.load(Ordering::Relaxed)))),
            Metric::Histogram(h) => {
                let buckets: Vec<(f64, f64, u64)> = h
                    .counts
                    .iter()
                    .enumerate()
                    .filter_map(|(i, c)| {
                        let hits = c.load(Ordering::Relaxed);
                        (hits > 0).then(|| (bucket_lo(i), bucket_hi(i), hits))
                    })
                    .collect();
                out.histograms.push(HistogramSnapshot {
                    name: name.clone(),
                    count: h.count.load(Ordering::Relaxed),
                    sum: f64::from_bits(h.sum_bits.load(Ordering::Relaxed)),
                    min: f64::from_bits(h.min_bits.load(Ordering::Relaxed)),
                    max: f64::from_bits(h.max_bits.load(Ordering::Relaxed)),
                    buckets,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_follows_powers_of_two() {
        // Bucket i covers [2^(i + HIST_MIN_EXP), 2^(i + 1 + HIST_MIN_EXP)),
        // so 1.0 = 2^0 lands at index -HIST_MIN_EXP.
        let one = (-HIST_MIN_EXP) as usize;
        assert_eq!(bucket_index(1.0), one);
        assert_eq!(bucket_index(1.999), one);
        assert_eq!(bucket_index(2.0), one + 1);
        assert_eq!(bucket_index(0.5), one - 1);
        assert_eq!(bucket_index(1024.0), one + 10);
        assert_eq!(bucket_lo(one), 1.0);
        assert_eq!(bucket_hi(one), 2.0);
    }

    #[test]
    fn bucket_index_clamps_degenerate_samples() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-3.0), 0);
        // Non-finite samples (NaN, ±inf) are sentinel-bucketed at 0, not
        // clamped high: they signal a broken recorder, not a big value.
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(f64::INFINITY), 0);
        assert_eq!(bucket_index(1e300), HIST_BUCKETS - 1);
        // Below the lowest edge still lands in bucket 0 rather than
        // panicking on a negative index.
        assert_eq!(bucket_index(1e-30), 0);
    }

    #[test]
    fn every_finite_positive_sample_lands_inside_its_bucket() {
        for exp in -12..12 {
            let v = (2.0f64).powi(exp) * 1.5;
            let i = bucket_index(v);
            assert!(
                bucket_lo(i) <= v && v < bucket_hi(i),
                "{v} not in bucket {i}"
            );
        }
    }

    #[test]
    fn hist_tracks_count_sum_min_max() {
        let h = Hist::new();
        for v in [4.0, 0.25, 16.0] {
            h.record(v);
        }
        assert_eq!(h.count.load(Ordering::Relaxed), 3);
        assert_eq!(f64::from_bits(h.sum_bits.load(Ordering::Relaxed)), 20.25);
        assert_eq!(f64::from_bits(h.min_bits.load(Ordering::Relaxed)), 0.25);
        assert_eq!(f64::from_bits(h.max_bits.load(Ordering::Relaxed)), 16.0);
        h.zero();
        assert_eq!(h.count.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn quantiles_come_from_bucket_edges() {
        let snap = HistogramSnapshot {
            name: "q".to_string(),
            count: 100,
            sum: 0.0,
            min: 1.0,
            max: 8.0,
            buckets: vec![(1.0, 2.0, 50), (4.0, 8.0, 50)],
        };
        assert_eq!(snap.quantile(0.25), 1.0);
        assert_eq!(snap.quantile(0.75), 4.0);
        assert_eq!(snap.quantile(1.0), 4.0);
    }
}
