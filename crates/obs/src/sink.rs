//! Export sinks: JSON-lines trace dump and the human-readable summary.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::metrics::{self, MetricsSnapshot};
use crate::span::{self, SpanRecord};

/// Escapes a string for embedding in a JSON value.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` for JSON (finite values only; non-finite become
/// `null`, which JSON requires).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Serializes the whole trace — every finished span, then every metric —
/// as JSON lines.
pub(crate) fn to_jsonl() -> String {
    let mut out = String::new();
    for r in span::finished() {
        let parent = r.parent.map_or("null".to_string(), |p| p.to_string());
        let worker = r.worker.map_or("null".to_string(), |w| w.to_string());
        let _ = writeln!(
            out,
            "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"name\":\"{}\",\"start_ns\":{},\"dur_ns\":{},\"worker\":{}}}",
            r.id,
            parent,
            json_escape(&r.name),
            r.start_ns,
            r.dur_ns,
            worker
        );
    }
    let snap = metrics::snapshot();
    for (name, value) in &snap.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}",
            json_escape(name)
        );
    }
    for (name, value) in &snap.gauges {
        let _ = writeln!(
            out,
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
            json_escape(name),
            json_f64(*value)
        );
    }
    for h in &snap.histograms {
        let buckets: Vec<String> = h
            .buckets
            .iter()
            .map(|(lo, hi, hits)| format!("[{},{},{hits}]", json_f64(*lo), json_f64(*hi)))
            .collect();
        let _ = writeln!(
            out,
            "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{}]}}",
            json_escape(&h.name),
            h.count,
            json_f64(h.sum),
            json_f64(h.min),
            json_f64(h.max),
            buckets.join(",")
        );
    }
    out
}

/// Formats nanoseconds with an adaptive unit.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Formats a general metric value compactly.
fn fmt_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e6 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

/// One aggregated node of the span tree: all spans sharing a name *and* an
/// aggregated parent path collapse into one row.
struct Node {
    name: String,
    children: Vec<usize>,
    calls: u64,
    total_ns: u64,
    /// Distinct workers that recorded spans for this node (for thread
    /// attribution); `None` entries mean the main thread.
    workers: Vec<Option<usize>>,
}

/// Builds the aggregated span tree. Returns `(nodes, roots)`.
fn build_tree(records: &[SpanRecord]) -> (Vec<Node>, Vec<usize>) {
    // Parent ids may belong to spans that have not finished (e.g. the
    // caller summarizes inside a root span): those children are treated
    // as roots of their own subtrees.
    let by_id: HashMap<u64, &SpanRecord> = records.iter().map(|r| (r.id, r)).collect();
    let mut nodes: Vec<Node> = Vec::new();
    let mut roots: Vec<usize> = Vec::new();
    let mut interned: HashMap<(Option<usize>, String), usize> = HashMap::new();
    let mut node_of: HashMap<u64, usize> = HashMap::new();

    // Resolve a span id to its aggregated node, interning ancestors first.
    fn resolve(
        id: u64,
        by_id: &HashMap<u64, &SpanRecord>,
        nodes: &mut Vec<Node>,
        roots: &mut Vec<usize>,
        interned: &mut HashMap<(Option<usize>, String), usize>,
        node_of: &mut HashMap<u64, usize>,
    ) -> usize {
        if let Some(&n) = node_of.get(&id) {
            return n;
        }
        let record = by_id[&id];
        let parent_node = record
            .parent
            .filter(|p| by_id.contains_key(p))
            .map(|p| resolve(p, by_id, nodes, roots, interned, node_of));
        let key = (parent_node, record.name.clone());
        let node = *interned.entry(key).or_insert_with(|| {
            nodes.push(Node {
                name: record.name.clone(),
                children: Vec::new(),
                calls: 0,
                total_ns: 0,
                workers: Vec::new(),
            });
            let idx = nodes.len() - 1;
            match parent_node {
                Some(p) => nodes[p].children.push(idx),
                None => roots.push(idx),
            }
            idx
        });
        node_of.insert(id, node);
        node
    }

    // Sort by start so tree rows appear in first-execution order.
    let mut order: Vec<&SpanRecord> = records.iter().collect();
    order.sort_by_key(|r| (r.start_ns, r.id));
    for r in order {
        let n = resolve(
            r.id,
            &by_id,
            &mut nodes,
            &mut roots,
            &mut interned,
            &mut node_of,
        );
        nodes[n].calls += 1;
        nodes[n].total_ns += r.dur_ns;
        if !nodes[n].workers.contains(&r.worker) {
            nodes[n].workers.push(r.worker);
        }
    }
    (nodes, roots)
}

fn render_node(nodes: &[Node], idx: usize, depth: usize, rows: &mut Vec<Vec<String>>) {
    let n = &nodes[idx];
    let mean = n.total_ns as f64 / n.calls.max(1) as f64;
    let mut workers: Vec<String> = n
        .workers
        .iter()
        .map(|w| w.map_or("main".to_string(), |i| format!("w{i}")))
        .collect();
    workers.sort();
    rows.push(vec![
        format!("{}{}", "  ".repeat(depth), n.name),
        n.calls.to_string(),
        fmt_ns(n.total_ns as f64),
        fmt_ns(mean),
        workers.join(","),
    ]);
    for &c in &n.children {
        render_node(nodes, c, depth + 1, rows);
    }
}

/// Renders the end-of-run report: span tree, then counters, gauges, and
/// histograms.
pub(crate) fn summary() -> String {
    let mut out = String::new();
    let records = span::finished();
    if records.is_empty() {
        out.push_str("spans: none recorded\n");
    } else {
        let (nodes, roots) = build_tree(&records);
        let mut rows = vec![vec![
            "span".to_string(),
            "calls".to_string(),
            "total".to_string(),
            "mean".to_string(),
            "threads".to_string(),
        ]];
        for root in roots {
            render_node(&nodes, root, 0, &mut rows);
        }
        out.push_str(&crate::report::render_table(&rows));
    }

    let snap: MetricsSnapshot = metrics::snapshot();
    if !snap.counters.is_empty() {
        out.push('\n');
        let mut rows = vec![vec!["counter".to_string(), "value".to_string()]];
        for (name, value) in &snap.counters {
            rows.push(vec![name.clone(), value.to_string()]);
        }
        out.push_str(&crate::report::render_table(&rows));
    }
    if !snap.gauges.is_empty() {
        out.push('\n');
        let mut rows = vec![vec!["gauge".to_string(), "value".to_string()]];
        for (name, value) in &snap.gauges {
            rows.push(vec![name.clone(), fmt_value(*value)]);
        }
        out.push_str(&crate::report::render_table(&rows));
    }
    if !snap.histograms.is_empty() {
        out.push('\n');
        let mut rows = vec![vec![
            "histogram".to_string(),
            "count".to_string(),
            "mean".to_string(),
            "min".to_string(),
            "p50".to_string(),
            "p99".to_string(),
            "max".to_string(),
        ]];
        for h in &snap.histograms {
            rows.push(vec![
                h.name.clone(),
                h.count.to_string(),
                fmt_value(h.mean()),
                fmt_value(if h.count == 0 { 0.0 } else { h.min }),
                fmt_value(h.quantile(0.5)),
                fmt_value(h.quantile(0.99)),
                fmt_value(if h.count == 0 { 0.0 } else { h.max }),
            ]);
        }
        out.push_str(&crate::report::render_table(&rows));
    }
    out
}
