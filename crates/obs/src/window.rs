//! Rolling-window SLO aggregation: ring-buffered log2 histograms and
//! counters over a virtual clock, plus the health watchdog that turns
//! their trailing-window rates into an `Ok`/`Degraded`/`Unhealthy`
//! verdict.
//!
//! The process-lifetime histograms in the metrics registry answer "what
//! happened since start"; a serving process needs "what is happening
//! *now*". This module provides that view: a [`WindowHistogram`] is a
//! ring of [`SLOTS`]-style slots (default 12 × 5 s), each an independent
//! 96-bucket log2 histogram identical in layout to the registry's
//! [`Hist`](crate)'s buckets, rotated lazily by whoever records or reads.
//! A [`snapshot`](WindowHistogram::snapshot) merges the slots covering
//! the trailing window into one [`WindowSnapshot`], whose quantiles are
//! therefore live p50/p99 over (by default) the last minute rather than
//! the process lifetime.
//!
//! Everything here is driven by an explicit `now_us` virtual clock — no
//! `Instant` is ever read — so the exact rotation boundaries are unit
//! testable, and the serving layer can feed the same microsecond epoch
//! it already stamps requests with.
//!
//! This module is always compiled (it has no ambient global state and
//! costs nothing unless a window is constructed); the feature gate on
//! the crate only covers the process-global span/metric instrumentation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of log-scale histogram buckets (shared with the registry's
/// lifetime histograms, so windowed and cumulative views bucket alike).
pub const HIST_BUCKETS: usize = 96;

/// Exponent of the lowest bucket edge: bucket `i` covers
/// `[2^(i + HIST_MIN_EXP), 2^(i + 1 + HIST_MIN_EXP))`. With −40 the
/// histogram spans ~9.1e−13 .. 3.6e16 — wide enough for rates (1e−6..1)
/// and wall times in nanoseconds (1..1e12) alike.
pub const HIST_MIN_EXP: i32 = -40;

/// Maps a sample to its bucket. Non-positive and non-finite values land
/// in bucket 0; values beyond the top edge clamp into the last bucket.
pub fn bucket_index(value: f64) -> usize {
    if !value.is_finite() || value <= 0.0 {
        return 0;
    }
    let exp = value.log2().floor() as i32 - HIST_MIN_EXP;
    exp.clamp(0, HIST_BUCKETS as i32 - 1) as usize
}

/// Lower edge of bucket `i`.
pub fn bucket_lo(i: usize) -> f64 {
    (2.0f64).powi(i as i32 + HIST_MIN_EXP)
}

/// Upper edge of bucket `i`.
pub fn bucket_hi(i: usize) -> f64 {
    (2.0f64).powi(i as i32 + 1 + HIST_MIN_EXP)
}

/// Sentinel slot sequence meaning "never written" (a real sequence of
/// `u64::MAX` would need a virtual clock ~585 millennia past the epoch).
const SEQ_EMPTY: u64 = u64::MAX;

/// Ring geometry of a rolling window: `slots` slots of `slot_us` each;
/// the trailing window spans `slots × slot_us` (the current partial slot
/// plus `slots − 1` sealed ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Width of one ring slot, in virtual microseconds (clamped ≥ 1).
    pub slot_us: u64,
    /// Number of ring slots (clamped ≥ 2: one live, one+ trailing).
    pub slots: usize,
}

impl Default for WindowConfig {
    /// 12 slots × 5 s — a one-minute trailing window refreshed every 5 s.
    fn default() -> WindowConfig {
        WindowConfig {
            slot_us: 5_000_000,
            slots: 12,
        }
    }
}

impl WindowConfig {
    /// A 12-slot ring spanning `secs` seconds in total.
    pub fn for_span_secs(secs: u64) -> WindowConfig {
        let slots = 12usize;
        WindowConfig {
            slot_us: (secs.max(1) * 1_000_000 / slots as u64).max(1),
            slots,
        }
    }

    /// The configured window span from `METADSE_OBS_WINDOW_SECS`
    /// (trailing-window seconds, default 60).
    pub fn from_env() -> WindowConfig {
        let secs = std::env::var("METADSE_OBS_WINDOW_SECS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(60);
        WindowConfig::for_span_secs(secs)
    }

    /// Total trailing-window span in microseconds.
    pub fn window_us(&self) -> u64 {
        self.slot_us.max(1).saturating_mul(self.slots.max(2) as u64)
    }

    fn normalized(self) -> WindowConfig {
        WindowConfig {
            slot_us: self.slot_us.max(1),
            slots: self.slots.max(2),
        }
    }

    /// The slot sequence number covering virtual time `now_us`.
    fn seq(&self, now_us: u64) -> u64 {
        now_us / self.slot_us
    }
}

/// CAS loop applying `f` to an `f64` stored as bits in an `AtomicU64`.
fn atomic_f64_update(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(current)).to_bits();
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(observed) => current = observed,
        }
    }
}

/// One ring slot of a [`WindowHistogram`]: a full log2 histogram plus
/// the slot sequence it currently holds samples for.
struct HistSlot {
    seq: AtomicU64,
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl HistSlot {
    fn new() -> HistSlot {
        HistSlot {
            seq: AtomicU64::new(SEQ_EMPTY),
            counts: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    fn zero(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0.0f64.to_bits(), Ordering::Relaxed);
        self.min_bits
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }

    fn record(&self, value: f64) {
        self.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_update(&self.sum_bits, |s| s + value);
        atomic_f64_update(&self.min_bits, |m| m.min(value));
        atomic_f64_update(&self.max_bits, |m| m.max(value));
    }
}

/// A rolling-window log2 histogram: concurrent recorders, lazy rotation.
///
/// Recording is lock-free on the hot path (the slot covering `now_us` is
/// already current); only the recorder that first crosses a slot
/// boundary takes the rotation mutex to seal-and-reuse the oldest slot.
/// A recorder whose timestamp belongs to a slot the ring has already
/// rotated past drops the sample (counted on
/// [`stale_drops`](WindowHistogram::stale_drops)) rather than polluting
/// a newer slot.
pub struct WindowHistogram {
    config: WindowConfig,
    slots: Vec<HistSlot>,
    rotate: Mutex<()>,
    stale: AtomicU64,
}

impl std::fmt::Debug for WindowHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowHistogram")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl WindowHistogram {
    /// An empty window under `config` (geometry clamped sane).
    pub fn new(config: WindowConfig) -> WindowHistogram {
        let config = config.normalized();
        WindowHistogram {
            slots: (0..config.slots).map(|_| HistSlot::new()).collect(),
            rotate: Mutex::new(()),
            stale: AtomicU64::new(0),
            config,
        }
    }

    /// The (normalized) ring geometry.
    pub fn config(&self) -> &WindowConfig {
        &self.config
    }

    /// Samples dropped because their timestamp predated the ring's
    /// trailing edge when they arrived.
    pub fn stale_drops(&self) -> u64 {
        self.stale.load(Ordering::Relaxed)
    }

    /// Records `value` at virtual time `now_us`. Returns `false` when
    /// the sample was dropped as stale.
    pub fn record(&self, value: f64, now_us: u64) -> bool {
        let seq = self.config.seq(now_us);
        let slot = &self.slots[(seq % self.config.slots as u64) as usize];
        loop {
            let current = slot.seq.load(Ordering::Acquire);
            if current == seq {
                slot.record(value);
                return true;
            }
            if current != SEQ_EMPTY && current > seq {
                // The ring already rotated past this timestamp.
                self.stale.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            // Slot boundary crossed: seal-and-reuse under the rotation
            // lock, then retry (a racing rotator may have won).
            let _guard = self.rotate.lock().expect("window rotation poisoned");
            let rechecked = slot.seq.load(Ordering::Acquire);
            if rechecked == current {
                slot.zero();
                slot.seq.store(seq, Ordering::Release);
            }
        }
    }

    /// Merges every slot inside the trailing window ending at `now_us`
    /// into one snapshot (the live partial slot plus the `slots − 1`
    /// sealed ones before it).
    pub fn snapshot(&self, now_us: u64) -> WindowSnapshot {
        let seq_now = self.config.seq(now_us);
        let seq_lo = seq_now.saturating_sub(self.config.slots as u64 - 1);
        let mut snap = WindowSnapshot::empty(self.config.window_us());
        for slot in &self.slots {
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == SEQ_EMPTY || seq < seq_lo || seq > seq_now {
                continue;
            }
            for (i, c) in slot.counts.iter().enumerate() {
                snap.buckets[i] += c.load(Ordering::Relaxed);
            }
            snap.count += slot.count.load(Ordering::Relaxed);
            snap.sum += f64::from_bits(slot.sum_bits.load(Ordering::Relaxed));
            snap.min = snap
                .min
                .min(f64::from_bits(slot.min_bits.load(Ordering::Relaxed)));
            snap.max = snap
                .max
                .max(f64::from_bits(slot.max_bits.load(Ordering::Relaxed)));
        }
        snap
    }
}

/// Point-in-time merge of the slots covering one trailing window.
///
/// Snapshots are *mergeable*: [`merge`](WindowSnapshot::merge) combines
/// two snapshots bucket-wise, which is associative and commutative
/// (exactly so when sample sums are exactly representable, e.g. integer
/// microsecond samples below 2⁵³) — the property that lets per-shard
/// windows roll up into a fleet view.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSnapshot {
    /// Trailing-window span this snapshot covers, in microseconds.
    pub window_us: u64,
    /// Samples in the window.
    pub count: u64,
    /// Sum of all samples in the window.
    pub sum: f64,
    /// Smallest sample (`+∞` while empty; use [`WindowSnapshot::min`]).
    pub min: f64,
    /// Largest sample (`−∞` while empty; use [`WindowSnapshot::max`]).
    pub max: f64,
    /// Dense per-bucket hit counts ([`HIST_BUCKETS`] entries).
    pub buckets: Vec<u64>,
}

impl WindowSnapshot {
    /// An empty snapshot spanning `window_us`.
    pub fn empty(window_us: u64) -> WindowSnapshot {
        WindowSnapshot {
            window_us,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: vec![0; HIST_BUCKETS],
        }
    }

    /// Bucket-wise merge of two snapshots (counts add, edges combine,
    /// spans take the larger — merging shards of the same window keeps
    /// the span).
    pub fn merge(&self, other: &WindowSnapshot) -> WindowSnapshot {
        WindowSnapshot {
            window_us: self.window_us.max(other.window_us),
            count: self.count + other.count,
            sum: self.sum + other.sum,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            buckets: self
                .buckets
                .iter()
                .zip(&other.buckets)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Approximate quantile from the bucket edges: the lower edge of the
    /// bucket holding the `q`-th sample, clamped by observed min/max.
    /// Monotone in `q` by construction (the bucket walk only advances).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &hits) in self.buckets.iter().enumerate() {
            seen += hits;
            if hits > 0 && seen >= rank {
                return bucket_lo(i).clamp(self.min.min(self.max), self.max.max(self.min));
            }
        }
        self.max
    }

    /// Mean of the samples in the window (0 while empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample, or 0 while empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 while empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// One ring slot of a [`WindowCounter`].
struct CountSlot {
    seq: AtomicU64,
    value: AtomicU64,
}

/// A rolling-window event counter: the trailing-window companion to a
/// lifetime counter, for rates (shed/s, deadline misses per window).
/// Same lazy-rotation discipline as [`WindowHistogram`].
pub struct WindowCounter {
    config: WindowConfig,
    slots: Vec<CountSlot>,
    rotate: Mutex<()>,
}

impl std::fmt::Debug for WindowCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowCounter")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl WindowCounter {
    /// An empty counter ring under `config` (geometry clamped sane).
    pub fn new(config: WindowConfig) -> WindowCounter {
        let config = config.normalized();
        WindowCounter {
            slots: (0..config.slots)
                .map(|_| CountSlot {
                    seq: AtomicU64::new(SEQ_EMPTY),
                    value: AtomicU64::new(0),
                })
                .collect(),
            rotate: Mutex::new(()),
            config,
        }
    }

    /// Adds `delta` at virtual time `now_us`. Returns `false` when the
    /// ring has already rotated past that timestamp (event dropped).
    pub fn add(&self, delta: u64, now_us: u64) -> bool {
        let seq = self.config.seq(now_us);
        let slot = &self.slots[(seq % self.config.slots as u64) as usize];
        loop {
            let current = slot.seq.load(Ordering::Acquire);
            if current == seq {
                slot.value.fetch_add(delta, Ordering::Relaxed);
                return true;
            }
            if current != SEQ_EMPTY && current > seq {
                return false;
            }
            let _guard = self.rotate.lock().expect("window rotation poisoned");
            let rechecked = slot.seq.load(Ordering::Acquire);
            if rechecked == current {
                slot.value.store(0, Ordering::Relaxed);
                slot.seq.store(seq, Ordering::Release);
            }
        }
    }

    /// Total events inside the trailing window ending at `now_us`.
    pub fn total(&self, now_us: u64) -> u64 {
        let seq_now = self.config.seq(now_us);
        let seq_lo = seq_now.saturating_sub(self.config.slots as u64 - 1);
        self.slots
            .iter()
            .filter(|s| {
                let seq = s.seq.load(Ordering::Acquire);
                seq != SEQ_EMPTY && seq >= seq_lo && seq <= seq_now
            })
            .map(|s| s.value.load(Ordering::Relaxed))
            .sum()
    }

    /// Events per second over the trailing window ending at `now_us`.
    pub fn rate_per_sec(&self, now_us: u64) -> f64 {
        self.total(now_us) as f64 / (self.config.window_us() as f64 / 1e6)
    }
}

// ---------------------------------------------------------------------
// Health watchdog
// ---------------------------------------------------------------------

/// The serving process's live health verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Health {
    /// Trailing-window rates are inside every threshold.
    Ok,
    /// The deadline-miss or shed rate crossed its threshold: the server
    /// answers, but is violating its SLO.
    Degraded,
    /// The queue is stalled — the oldest admitted request has waited
    /// past the stall threshold, so workers are wedged or severely
    /// backlogged.
    Unhealthy,
}

impl Health {
    /// Lowercase wire name (`ok` / `degraded` / `unhealthy`).
    pub fn name(&self) -> &'static str {
        match self {
            Health::Ok => "ok",
            Health::Degraded => "degraded",
            Health::Unhealthy => "unhealthy",
        }
    }
}

impl std::fmt::Display for Health {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Watchdog thresholds. Rates are per-mille (integer, so configs stay
/// `Eq`-comparable): 100 ‰ = 10 %.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Deadline-miss rate over the window, per-mille of admitted
    /// requests, above which the server reports [`Health::Degraded`].
    pub max_miss_permille: u32,
    /// Shed rate over the window, per-mille of submitted requests,
    /// above which the server reports [`Health::Degraded`].
    pub max_shed_permille: u32,
    /// Queue-stall bound: an admitted request still queued after this
    /// many microseconds flips the server to [`Health::Unhealthy`].
    /// Must comfortably exceed the batcher's `max_wait_us`.
    pub stall_us: u64,
}

impl Default for WatchdogConfig {
    /// 10 % miss, 10 % shed, 5 s stall.
    fn default() -> WatchdogConfig {
        WatchdogConfig {
            max_miss_permille: 100,
            max_shed_permille: 100,
            stall_us: 5_000_000,
        }
    }
}

impl WatchdogConfig {
    /// Thresholds from the environment: `METADSE_WATCHDOG_MISS_RATE`
    /// and `METADSE_WATCHDOG_SHED_RATE` (fractions, e.g. `0.1`), and
    /// `METADSE_WATCHDOG_STALL_MS` (milliseconds).
    pub fn from_env() -> WatchdogConfig {
        let base = WatchdogConfig::default();
        let rate = |name: &str, default_permille: u32| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse::<f64>().ok())
                .filter(|r| r.is_finite() && *r >= 0.0)
                .map_or(default_permille, |r| (r * 1000.0).round() as u32)
        };
        WatchdogConfig {
            max_miss_permille: rate("METADSE_WATCHDOG_MISS_RATE", base.max_miss_permille),
            max_shed_permille: rate("METADSE_WATCHDOG_SHED_RATE", base.max_shed_permille),
            stall_us: std::env::var("METADSE_WATCHDOG_STALL_MS")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .map_or(base.stall_us, |ms| ms.saturating_mul(1000)),
        }
    }

    /// Evaluates one observation against the thresholds. Pure — callers
    /// assemble the [`WatchdogSample`] from their own windows/queue.
    pub fn evaluate(&self, sample: &WatchdogSample) -> Health {
        if sample
            .oldest_queued_wait_us
            .is_some_and(|w| w >= self.stall_us)
        {
            return Health::Unhealthy;
        }
        let over = |events: u64, denom: u64, permille: u32| {
            denom > 0 && events.saturating_mul(1000) > u64::from(permille).saturating_mul(denom)
        };
        let submitted = sample.admitted + sample.sheds;
        if over(sample.misses, sample.admitted, self.max_miss_permille)
            || over(sample.sheds, submitted, self.max_shed_permille)
        {
            return Health::Degraded;
        }
        Health::Ok
    }
}

/// One watchdog observation: trailing-window event counts plus the
/// queue's current state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WatchdogSample {
    /// Requests admitted to the queue inside the window.
    pub admitted: u64,
    /// Requests that missed their deadline inside the window.
    pub misses: u64,
    /// Requests shed at admission inside the window.
    pub sheds: u64,
    /// How long the oldest still-queued request has waited, if any.
    pub oldest_queued_wait_us: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_matches_registry() {
        let one = (-HIST_MIN_EXP) as usize;
        assert_eq!(bucket_index(1.0), one);
        assert_eq!(bucket_index(2.0), one + 1);
        assert_eq!(bucket_lo(one), 1.0);
        assert_eq!(bucket_hi(one), 2.0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(1e300), HIST_BUCKETS - 1);
    }

    #[test]
    fn config_normalizes_degenerate_geometry() {
        let h = WindowHistogram::new(WindowConfig {
            slot_us: 0,
            slots: 0,
        });
        assert_eq!(h.config().slot_us, 1);
        assert_eq!(h.config().slots, 2);
        assert!(h.record(1.0, 0));
    }

    #[test]
    fn span_env_default_is_one_minute() {
        let w = WindowConfig::default();
        assert_eq!(w.window_us(), 60_000_000);
        assert_eq!(WindowConfig::for_span_secs(60), w);
    }

    #[test]
    fn watchdog_thresholds() {
        let wd = WatchdogConfig::default();
        let ok = WatchdogSample {
            admitted: 100,
            misses: 10,
            sheds: 0,
            oldest_queued_wait_us: Some(100),
        };
        // Exactly at the 10 % threshold is still Ok (strictly-above trips).
        assert_eq!(wd.evaluate(&ok), Health::Ok);
        assert_eq!(
            wd.evaluate(&WatchdogSample { misses: 11, ..ok }),
            Health::Degraded
        );
        assert_eq!(
            wd.evaluate(&WatchdogSample { sheds: 100, ..ok }),
            Health::Degraded
        );
        assert_eq!(
            wd.evaluate(&WatchdogSample {
                oldest_queued_wait_us: Some(5_000_000),
                ..ok
            }),
            Health::Unhealthy
        );
        // No traffic at all is healthy, not a division by zero.
        assert_eq!(wd.evaluate(&WatchdogSample::default()), Health::Ok);
    }
}
