//! The shared human-readable report sink.
//!
//! Every harness binary prints through these functions instead of
//! scattering `println!`s, so run output has one shape (banners, sections,
//! key–value lines, aligned tables, warnings) and one place to intercept
//! it. This module is always compiled — it is *output*, not
//! instrumentation — and is independent of the `enabled` feature.

use std::fmt::Display;
use std::sync::Mutex;

/// Capture buffer for tests; `None` means lines go straight to stdout.
static CAPTURE: Mutex<Option<Vec<String>>> = Mutex::new(None);

fn emit(text: &str) {
    let mut guard = CAPTURE.lock().expect("report capture poisoned");
    match guard.as_mut() {
        Some(buffer) => buffer.extend(text.lines().map(str::to_string)),
        None => println!("{text}"),
    }
}

/// Prints a full-width banner naming a run.
pub fn banner(title: &str) {
    let rule = "=".repeat(64);
    emit(&rule);
    emit(title);
    emit(&rule);
}

/// Prints a section heading.
pub fn section(title: &str) {
    emit(&format!("\n[{title}]"));
}

/// Prints one line of report text.
pub fn line(text: impl AsRef<str>) {
    emit(text.as_ref());
}

/// Prints a key–value line.
pub fn kv(key: &str, value: impl Display) {
    emit(&format!("{key}: {value}"));
}

/// Prints a warning line to stderr (warnings must survive stdout
/// redirection).
pub fn warn(text: impl AsRef<str>) {
    let mut guard = CAPTURE.lock().expect("report capture poisoned");
    match guard.as_mut() {
        Some(buffer) => buffer.push(format!("warning: {}", text.as_ref())),
        None => eprintln!("warning: {}", text.as_ref()),
    }
}

/// Renders rows as an aligned text table and prints it. The first row is
/// the header.
pub fn table(rows: &[Vec<String>]) {
    emit(render_table(rows).trim_end_matches('\n'));
}

/// Renders rows as an aligned text table. The first row is the header.
///
/// # Panics
///
/// Panics if rows have inconsistent arity.
pub fn render_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows[0].len();
    let mut widths = vec![0usize; cols];
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        for (w, cell) in widths.iter().zip(row) {
            out.push_str(&format!("{cell:<width$}  ", width = w));
        }
        out.push('\n');
        if i == 0 {
            for w in &widths {
                out.push_str(&"-".repeat(*w));
                out.push_str("  ");
            }
            out.push('\n');
        }
    }
    out
}

/// Runs `f` with report output captured instead of printed; returns `f`'s
/// result and the captured lines. Test hook — not meant for production
/// flows (capture is process-global).
pub fn capture<T>(f: impl FnOnce() -> T) -> (T, Vec<String>) {
    {
        let mut guard = CAPTURE.lock().expect("report capture poisoned");
        *guard = Some(Vec::new());
    }
    let value = f();
    let lines = {
        let mut guard = CAPTURE.lock().expect("report capture poisoned");
        guard.take().unwrap_or_default()
    };
    (value, lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_is_aligned() {
        let rows = vec![
            vec!["model".to_string(), "rmse".to_string()],
            vec!["MetaDSE".to_string(), "0.22".to_string()],
        ];
        let s = render_table(&rows);
        assert!(s.contains("model"));
        assert!(s.contains("-----"));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn capture_collects_all_shapes() {
        let ((), lines) = capture(|| {
            banner("demo");
            section("phase");
            kv("key", 7);
            warn("careful");
            table(&[
                vec!["a".to_string(), "b".to_string()],
                vec!["1".to_string(), "2".to_string()],
            ]);
        });
        assert!(lines.iter().any(|l| l == "demo"));
        assert!(lines.iter().any(|l| l.contains("[phase]")));
        assert!(lines.iter().any(|l| l == "key: 7"));
        assert!(lines.iter().any(|l| l == "warning: careful"));
        assert!(lines.iter().any(|l| l.starts_with('a')));
    }
}
