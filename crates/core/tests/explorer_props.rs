//! Property-style tests of the explorer's Pareto machinery.
//!
//! Each test draws many random fronts from a seeded [`StdRng`] (the
//! hermetic build has no proptest), so failures are reproducible from
//! the fixed seed. Objective values are drawn from a coarse grid so
//! exact ties — the edge the dominance definition has to get right —
//! occur constantly rather than never.

use metadse::explorer::{hypervolume, pareto_front, ParetoEntry};
use metadse_sim::ConfigPoint;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 64;

/// Mirror of the explorer's (private) dominance predicate: no worse on
/// both objectives, strictly better on at least one.
fn dominates(a: &ParetoEntry, b: &ParetoEntry) -> bool {
    (a.ipc >= b.ipc && a.power <= b.power) && (a.ipc > b.ipc || a.power < b.power)
}

/// A random entry set with unique points and grid-valued objectives
/// (ties are common by construction).
fn random_entries(rng: &mut StdRng) -> Vec<ParetoEntry> {
    let n = rng.gen_range(1..40usize);
    (0..n)
        .map(|tag| ParetoEntry {
            point: ConfigPoint::new(vec![tag; 21]),
            ipc: rng.gen_range(0..8u32) as f64 * 0.5,
            power: rng.gen_range(0..10u32) as f64,
        })
        .collect()
}

#[test]
fn pareto_front_is_mutually_non_dominated() {
    let mut rng = StdRng::seed_from_u64(0xe0_01);
    for _ in 0..CASES {
        let entries = random_entries(&mut rng);
        let front = pareto_front(&entries);
        for a in &front {
            for b in &front {
                assert!(
                    !dominates(a, b),
                    "front entry ({}, {}) dominates front entry ({}, {})",
                    a.ipc,
                    a.power,
                    b.ipc,
                    b.power
                );
            }
        }
    }
}

#[test]
fn pareto_front_contains_every_non_dominated_input_and_nothing_else() {
    let mut rng = StdRng::seed_from_u64(0xe0_02);
    for _ in 0..CASES {
        let entries = random_entries(&mut rng);
        let front = pareto_front(&entries);
        for e in &entries {
            let undominated = !entries.iter().any(|other| dominates(other, e));
            let in_front = front.iter().any(|f| f.point == e.point);
            assert_eq!(
                undominated, in_front,
                "entry ({}, {}) undominated={undominated} but in_front={in_front}",
                e.ipc, e.power
            );
        }
        // And the front never invents entries.
        for f in &front {
            assert!(entries.contains(f), "front entry not drawn from the input");
        }
    }
}

#[test]
fn pareto_front_is_idempotent() {
    let mut rng = StdRng::seed_from_u64(0xe0_03);
    for _ in 0..CASES {
        let front = pareto_front(&random_entries(&mut rng));
        assert_eq!(pareto_front(&front), front);
    }
}

#[test]
fn hypervolume_is_monotone_under_adding_any_point() {
    let mut rng = StdRng::seed_from_u64(0xe0_04);
    for _ in 0..CASES {
        let mut entries = random_entries(&mut rng);
        let (ipc_ref, power_ref) = (0.0, 10.0);
        let before = hypervolume(&entries, ipc_ref, power_ref);
        entries.push(ParetoEntry {
            point: ConfigPoint::new(vec![999; 21]),
            ipc: rng.gen_range(-1.0..5.0),
            power: rng.gen_range(-1.0..12.0),
        });
        let after = hypervolume(&entries, ipc_ref, power_ref);
        assert!(
            after >= before,
            "adding a point shrank the hypervolume: {before} -> {after}"
        );
    }
}

#[test]
fn hypervolume_strictly_grows_when_a_point_dominates_the_whole_front() {
    let mut rng = StdRng::seed_from_u64(0xe0_05);
    for _ in 0..CASES {
        let mut entries = random_entries(&mut rng);
        let (ipc_ref, power_ref) = (0.0, 10.0);
        let before = hypervolume(&entries, ipc_ref, power_ref);
        // Strictly better than every entry on both objectives, and
        // strictly inside the reference box.
        let best_ipc = entries.iter().map(|e| e.ipc).fold(0.0, f64::max);
        let best_power = entries.iter().map(|e| e.power).fold(power_ref, f64::min);
        entries.push(ParetoEntry {
            point: ConfigPoint::new(vec![999; 21]),
            ipc: best_ipc + 0.25,
            power: (best_power - 0.25).min(power_ref - 0.25),
        });
        let after = hypervolume(&entries, ipc_ref, power_ref);
        assert!(
            after > before,
            "a point dominating the whole front must add volume: {before} -> {after}"
        );
    }
}

#[test]
fn hypervolume_of_front_equals_hypervolume_of_full_set() {
    // Dominated entries contribute nothing, so reducing to the front
    // first must not change the metric.
    let mut rng = StdRng::seed_from_u64(0xe0_06);
    for _ in 0..CASES {
        let entries = random_entries(&mut rng);
        let front = pareto_front(&entries);
        assert_eq!(
            hypervolume(&entries, 0.0, 10.0),
            hypervolume(&front, 0.0, 10.0)
        );
    }
}
