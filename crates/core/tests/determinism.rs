//! Regression tests for the parallel execution layer: fanning per-task
//! work across threads must be bit-identical to the serial path, because
//! tasks are sampled serially, each task is a pure function of the
//! meta-parameter snapshot, and reductions run in task order.

use metadse::maml::{pretrain, MamlConfig};
use metadse::predictor::{PredictorConfig, TransformerPredictor};
use metadse_nn::layers::Module;
use metadse_nn::tensor::fused::FusedModeGuard;
use metadse_nn::tensor::pool::PoolModeGuard;
use metadse_parallel::ParallelConfig;
use metadse_workloads::{Dataset, Metric, Sample};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn synthetic_dataset(seed: u64, dim: usize, n: usize, shift: f64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let samples = (0..n)
        .map(|_| {
            let features: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect();
            let y: f64 = features
                .iter()
                .enumerate()
                .map(|(j, v)| v * ((j as f64 * 0.7 + shift).sin() + 1.0))
                .sum::<f64>()
                / dim as f64;
            Sample {
                features,
                ipc: y,
                power_w: y * 10.0,
            }
        })
        .collect();
    Dataset::from_samples(format!("synthetic-{seed}"), samples)
}

fn tiny_model(dim: usize) -> TransformerPredictor {
    TransformerPredictor::new(
        PredictorConfig {
            num_params: dim,
            d_model: 8,
            heads: 2,
            depth: 1,
            d_hidden: 16,
            head_hidden: 8,
        },
        5,
    )
}

#[test]
fn pretrain_is_bit_identical_across_thread_counts() {
    let dim = 6;
    // tiny() needs support_size + query_size = 50 samples per task.
    let train: Vec<Dataset> = (0..2)
        .map(|i| synthetic_dataset(60 + i, dim, 80, i as f64 * 0.4))
        .collect();
    let val = vec![synthetic_dataset(70, dim, 80, 0.2)];

    let run = |threads: usize| {
        let model = tiny_model(dim);
        let config = MamlConfig {
            // Cutoff 1 + oversubscribe: the meta-batch is only 2 tasks
            // and the CI host may be single-core — force real workers.
            parallel: ParallelConfig::with_threads(threads)
                .with_serial_cutoff(1)
                .oversubscribed(),
            ..MamlConfig::tiny()
        };
        let report = pretrain(&model, &train, &val, Metric::Ipc, &config);
        let params: Vec<Vec<f64>> = model.params().iter().map(|p| p.get().to_vec()).collect();
        (report, params)
    };

    let (serial_report, serial_params) = run(1);
    let (parallel_report, parallel_params) = run(4);

    assert_eq!(
        serial_report, parallel_report,
        "losses must match bit-for-bit across thread counts"
    );
    assert_eq!(
        serial_params, parallel_params,
        "final parameters must match bit-for-bit across thread counts"
    );

    check_cross_build_digest(&serial_report, &serial_params);
}

/// The buffer pool and the fused kernels are performance features with a
/// bit-identity contract: running the full tiny pretrain with both enabled
/// must reproduce the plain-primitive run exactly. Both toggles are
/// thread-local, so the run is pinned to one inline thread.
#[test]
fn pool_and_fusion_do_not_change_pretrain_numerics() {
    let dim = 6;
    let train: Vec<Dataset> = (0..2)
        .map(|i| synthetic_dataset(60 + i, dim, 80, i as f64 * 0.4))
        .collect();
    let val = vec![synthetic_dataset(70, dim, 80, 0.2)];

    let run = |enabled: bool| {
        let _pool = PoolModeGuard::set(enabled);
        let _fuse = FusedModeGuard::set(enabled);
        let model = tiny_model(dim);
        let config = MamlConfig {
            parallel: ParallelConfig::with_threads(1),
            ..MamlConfig::tiny()
        };
        let report = pretrain(&model, &train, &val, Metric::Ipc, &config);
        let params: Vec<Vec<f64>> = model.params().iter().map(|p| p.get().to_vec()).collect();
        (report, params)
    };

    let fast = run(true);
    let plain = run(false);
    assert_eq!(
        fast, plain,
        "pool + fused kernels must be bit-identical to the primitive path"
    );
}

/// FNV-1a over the exact bit patterns of the run's outputs: any
/// difference in any parameter or reported loss changes the digest.
fn run_digest(report: &impl std::fmt::Debug, params: &[Vec<f64>]) -> String {
    let mut hash: u64 = 0xcbf29ce484222325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100000001b3);
        }
    };
    eat(format!("{report:?}").as_bytes());
    for p in params {
        for v in p {
            eat(&v.to_bits().to_le_bytes());
        }
    }
    format!("{hash:016x}")
}

/// Cross-build determinism check: observability is a compile-time
/// feature, so "obs on vs off" cannot be compared within one test
/// binary. Instead, when `METADSE_DIGEST_FILE` is set, the first build
/// to run writes its run digest there and every later build (e.g. the
/// same test re-run with `--features obs`, or with a different thread
/// default) must reproduce it bit-for-bit.
///
/// The record path is atomic (temp + rename): several test binaries
/// share the file within one `cargo test` run, and a concurrent reader
/// must never observe a half-written digest.
fn check_cross_build_digest(report: &impl std::fmt::Debug, params: &[Vec<f64>]) {
    let Ok(path) = std::env::var("METADSE_DIGEST_FILE") else {
        return;
    };
    // Each backend pins its own digest: the scalar backend keeps the
    // historical unsuffixed file, other backends get `<path>.<backend>`.
    let path = match metadse_nn::backend::kind() {
        metadse_nn::BackendKind::Scalar => path,
        kind => format!("{path}.{}", kind.name()),
    };
    let digest = run_digest(report, params);
    match std::fs::read_to_string(&path) {
        Ok(previous) if !previous.trim().is_empty() => assert_eq!(
            previous.trim(),
            digest,
            "pretrain digest diverged from the one recorded in {path} — \
             a differently-featured build changed the numerics"
        ),
        _ => metadse_nn::format::atomic_write(&path, digest.as_bytes())
            .unwrap_or_else(|e| panic!("could not record digest in {path}: {e}")),
    }
}
