//! Crash-safety tests for the training checkpoint subsystem: a run
//! killed at meta-iteration *k* and resumed from its latest checkpoint
//! must reproduce the uninterrupted run bit-for-bit — at any thread
//! count, and in the face of torn writes, corrupt generations, write
//! errors, and missing directories.

use std::path::PathBuf;
use std::sync::Arc;

use metadse::checkpoint::{CheckpointConfig, Checkpointer, FaultIo, FaultMode, FaultSpec};
use metadse::maml::{pretrain, MamlConfig};
use metadse::predictor::{PredictorConfig, TransformerPredictor};
use metadse_nn::layers::Module;
use metadse_parallel::ParallelConfig;
use metadse_workloads::{Dataset, Metric, Sample};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn synthetic_dataset(seed: u64, dim: usize, n: usize, shift: f64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let samples = (0..n)
        .map(|_| {
            let features: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect();
            let y: f64 = features
                .iter()
                .enumerate()
                .map(|(j, v)| v * ((j as f64 * 0.7 + shift).sin() + 1.0))
                .sum::<f64>()
                / dim as f64;
            Sample {
                features,
                ipc: y,
                power_w: y * 10.0,
            }
        })
        .collect();
    Dataset::from_samples(format!("synthetic-{seed}"), samples)
}

fn tiny_model(dim: usize) -> TransformerPredictor {
    TransformerPredictor::new(
        PredictorConfig {
            num_params: dim,
            d_model: 8,
            heads: 2,
            depth: 1,
            d_hidden: 16,
            head_hidden: 8,
        },
        5,
    )
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("metadse-ckpt-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

type RunResult = (metadse::maml::PretrainReport, Vec<Vec<f64>>);

/// Runs pretrain on the determinism suite's reference problem (same
/// datasets, same `MamlConfig::tiny()`), so the resumed digest can be
/// checked against the digest recorded by `tests/determinism.rs`.
fn run_reference(threads: usize, checkpoint: Option<CheckpointConfig>) -> RunResult {
    let dim = 6;
    let train: Vec<Dataset> = (0..2)
        .map(|i| synthetic_dataset(60 + i, dim, 80, i as f64 * 0.4))
        .collect();
    let val = vec![synthetic_dataset(70, dim, 80, 0.2)];
    let model = tiny_model(dim);
    let config = MamlConfig {
        // Cutoff 1 + oversubscribe: force real workers even on a
        // single-core CI host, exactly as the determinism tests do.
        parallel: ParallelConfig::with_threads(threads)
            .with_serial_cutoff(1)
            .oversubscribed(),
        checkpoint,
        ..MamlConfig::tiny()
    };
    let report = pretrain(&model, &train, &val, Metric::Ipc, &config);
    let params: Vec<Vec<f64>> = model.params().iter().map(|p| p.get().to_vec()).collect();
    (report, params)
}

/// Kill at meta-iteration `k` (via the halt switch — the run stops dead,
/// with no extra checkpoint), then resume in a fresh process-equivalent
/// (new model, new optimizer, new RNG) and run to completion.
fn kill_and_resume(threads: usize, k: u64, dir: &PathBuf) -> RunResult {
    let ckpt = CheckpointConfig {
        interval: 2,
        keep: 3,
        ..CheckpointConfig::new(dir)
    };
    let _partial = run_reference(
        threads,
        Some(CheckpointConfig {
            halt_after: Some(k),
            ..ckpt.clone()
        }),
    );
    run_reference(threads, Some(ckpt))
}

/// `MamlConfig::tiny()` is 2 epochs × 6 iterations. With `interval = 2`,
/// k = 3 resumes from a mid-epoch interval checkpoint with a partial
/// epoch-loss accumulator to replay, and k = 7 resumes from the epoch-0
/// boundary checkpoint (validation results and best-epoch selection
/// restored from disk). Both must reproduce the uninterrupted run
/// bit-for-bit at every thread count.
#[test]
fn kill_and_resume_is_bit_identical() {
    let baseline = run_reference(1, None);
    for threads in [1usize, 4] {
        for k in [3u64, 7] {
            let dir = temp_dir(&format!("resume-t{threads}-k{k}"));
            let resumed = kill_and_resume(threads, k, &dir);
            assert_eq!(
                resumed, baseline,
                "kill at iteration {k} + resume with {threads} thread(s) \
                 must be bit-identical to the uninterrupted run"
            );
            check_cross_build_digest(&resumed.0, &resumed.1);
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// Corrupting the newest generation on disk must make resume fall back
/// to the previous one — and still reproduce the uninterrupted run,
/// because replaying from an older checkpoint walks the same trajectory.
#[test]
fn corrupt_latest_generation_falls_back_and_still_matches() {
    let baseline = run_reference(1, None);
    let dir = temp_dir("corrupt-latest");
    let ckpt = CheckpointConfig {
        interval: 2,
        keep: 4,
        ..CheckpointConfig::new(&dir)
    };
    let _partial = run_reference(
        1,
        Some(CheckpointConfig {
            halt_after: Some(7),
            ..ckpt.clone()
        }),
    );

    // Flip bytes in the middle of the newest generation file.
    let mut generations: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "ckpt"))
        .collect();
    generations.sort();
    assert!(generations.len() >= 2, "need a fallback target");
    let latest = generations.last().unwrap();
    let mut bytes = std::fs::read(latest).unwrap();
    let mid = bytes.len() / 2;
    for b in &mut bytes[mid..mid + 16] {
        *b ^= 0xff;
    }
    std::fs::write(latest, &bytes).unwrap();

    // The checksum rejects the corrupt file and the loader falls back.
    let loaded = Checkpointer::new(ckpt.clone()).load_latest().unwrap();
    let (_, generation) = loaded.expect("an intact generation must remain");
    assert_eq!(
        generation as usize,
        generations.len() - 1,
        "latest generation is corrupt; the previous one must load"
    );

    let resumed = run_reference(1, Some(ckpt));
    assert_eq!(
        resumed, baseline,
        "resume after corrupt-latest fallback must still match the uninterrupted run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A torn write — half a chunk hits the disk but success is reported, so
/// the damaged file is completed, renamed, and sits there as the newest
/// generation — must be caught by the checksum on load and fall back.
#[test]
fn torn_write_is_caught_on_resume() {
    let baseline = run_reference(1, None);
    let dir = temp_dir("torn-resume");
    let ckpt = CheckpointConfig {
        interval: 2,
        keep: 4,
        ..CheckpointConfig::new(&dir)
    };
    // Intact generation first, then a deliberately torn one on top,
    // written through the fault shim over the real chunked write path.
    let _partial = run_reference(
        1,
        Some(CheckpointConfig {
            halt_after: Some(3),
            ..ckpt.clone()
        }),
    );
    let mut intact = Checkpointer::new(ckpt.clone());
    let (state, generation) = intact
        .load_latest()
        .unwrap()
        .expect("halt at 3 checkpointed");
    let mut torn = Checkpointer::with_io(
        ckpt.clone(),
        Arc::new(FaultIo::new(FaultSpec {
            fail_at: 3,
            mode: FaultMode::TornWrite,
        })),
    );
    let torn_generation = torn.save(&state).expect("torn writes report success");
    assert!(torn_generation > generation);

    // Load skips the torn newcomer and serves the intact state …
    let (reloaded, loaded_generation) = intact.load_latest().unwrap().unwrap();
    assert_eq!(loaded_generation, generation);
    assert_eq!(reloaded, state);

    // … and a full resume still reproduces the uninterrupted run.
    let resumed = run_reference(1, Some(ckpt));
    assert_eq!(resumed, baseline);
    std::fs::remove_dir_all(&dir).ok();
}

/// Disk-full-style write errors must not perturb training: the failed
/// checkpoint is warned about and skipped, the run completes on the
/// exact same trajectory, and later checkpoints still land.
#[test]
fn write_errors_degrade_gracefully() {
    let baseline = run_reference(1, None);
    let dir = temp_dir("write-error");
    let faulty = run_reference(
        1,
        Some(CheckpointConfig {
            interval: 2,
            // Operation 0 is the first save's file creation: the very
            // first checkpoint fails outright, later ones succeed.
            fault: Some(FaultSpec {
                fail_at: 0,
                mode: FaultMode::WriteError,
            }),
            ..CheckpointConfig::new(&dir)
        }),
    );
    assert_eq!(
        faulty, baseline,
        "a failed checkpoint write must leave the numerics untouched"
    );
    let mut cp = Checkpointer::new(CheckpointConfig::new(&dir));
    assert!(
        cp.load_latest().unwrap().is_some(),
        "checkpoints after the failed one must still be written"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A checkpoint directory that does not exist yet is a fresh start, not
/// an error — and gets created by the first save.
#[test]
fn missing_directory_is_a_fresh_start() {
    let baseline = run_reference(1, None);
    let dir = temp_dir("missing").join("nested").join("deeper");
    let run = run_reference(1, Some(CheckpointConfig::new(&dir)));
    assert_eq!(run, baseline);
    assert!(dir.is_dir(), "first save creates the directory");
    std::fs::remove_dir_all(dir.parent().unwrap().parent().unwrap()).ok();
}

/// Checkpoints written under a different training configuration must be
/// ignored (fingerprint mismatch), not half-applied.
#[test]
fn configuration_change_invalidates_checkpoints() {
    let dir = temp_dir("fingerprint");
    let ckpt = CheckpointConfig::new(&dir);
    let _under_tiny = run_reference(1, Some(ckpt.clone()));

    // Different inner_steps ⇒ different trajectory ⇒ different
    // fingerprint. The run must ignore the tiny()-config checkpoints in
    // the directory and match a fresh run of the changed config.
    let changed = |checkpoint: Option<CheckpointConfig>| {
        let dim = 6;
        let train: Vec<Dataset> = (0..2)
            .map(|i| synthetic_dataset(60 + i, dim, 80, i as f64 * 0.4))
            .collect();
        let val = vec![synthetic_dataset(70, dim, 80, 0.2)];
        let model = tiny_model(dim);
        let config = MamlConfig {
            inner_steps: 2,
            checkpoint,
            ..MamlConfig::tiny()
        };
        let report = pretrain(&model, &train, &val, Metric::Ipc, &config);
        let params: Vec<Vec<f64>> = model.params().iter().map(|p| p.get().to_vec()).collect();
        (report, params)
    };
    let fresh = changed(None);
    let with_stale_dir = changed(Some(ckpt));
    assert_eq!(
        with_stale_dir, fresh,
        "a config change must invalidate existing checkpoints"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A different *training task* — other source workloads, or another
/// target metric — must also invalidate checkpoints, even under an
/// identical config: one binary can run several pretrains into the same
/// `METADSE_CKPT` directory (fig5's leave-one-out splits, table2's
/// IPC-then-power pass), and a later pretrain must never adopt an
/// earlier one's final checkpoint.
#[test]
fn different_task_invalidates_checkpoints() {
    let dir = temp_dir("task-fingerprint");
    let ckpt = CheckpointConfig::new(&dir);
    // Fill the directory with checkpoints of the reference task,
    // including its final epoch-boundary generation.
    let _reference = run_reference(1, Some(ckpt.clone()));

    // Same config, same model geometry — but different datasets and the
    // other metric, like the next leave-one-out split of a sweep.
    let other_task = |checkpoint: Option<CheckpointConfig>| {
        let dim = 6;
        let train: Vec<Dataset> = (0..2)
            .map(|i| synthetic_dataset(80 + i, dim, 80, i as f64 * 0.3))
            .collect();
        let val = vec![synthetic_dataset(90, dim, 80, 0.5)];
        let model = tiny_model(dim);
        let config = MamlConfig {
            checkpoint,
            ..MamlConfig::tiny()
        };
        let report = pretrain(&model, &train, &val, Metric::Power, &config);
        let params: Vec<Vec<f64>> = model.params().iter().map(|p| p.get().to_vec()).collect();
        (report, params)
    };
    let fresh = other_task(None);
    let with_foreign_dir = other_task(Some(ckpt));
    assert_eq!(
        with_foreign_dir, fresh,
        "checkpoints of a different training task must be ignored"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// FNV-1a over the exact bit patterns of the run's outputs — identical
/// to the digest in `tests/determinism.rs`, and computed over the same
/// reference problem, so a resumed run must reproduce the digest an
/// uninterrupted (possibly differently-featured) build recorded.
fn run_digest(report: &impl std::fmt::Debug, params: &[Vec<f64>]) -> String {
    let mut hash: u64 = 0xcbf29ce484222325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100000001b3);
        }
    };
    eat(format!("{report:?}").as_bytes());
    for p in params {
        for v in p {
            eat(&v.to_bits().to_le_bytes());
        }
    }
    format!("{hash:016x}")
}

/// Record-or-compare against the shared digest file, mirroring
/// `determinism.rs`: atomic record (temp + rename) because several test
/// binaries share the file within one `cargo test` run.
fn check_cross_build_digest(report: &impl std::fmt::Debug, params: &[Vec<f64>]) {
    let Ok(path) = std::env::var("METADSE_DIGEST_FILE") else {
        return;
    };
    // Each backend pins its own digest: the scalar backend keeps the
    // historical unsuffixed file, other backends get `<path>.<backend>`.
    let path = match metadse_nn::backend::kind() {
        metadse_nn::BackendKind::Scalar => path,
        kind => format!("{path}.{}", kind.name()),
    };
    let digest = run_digest(report, params);
    match std::fs::read_to_string(&path) {
        Ok(previous) if !previous.trim().is_empty() => assert_eq!(
            previous.trim(),
            digest,
            "kill-and-resume digest diverged from the recorded uninterrupted digest in {path}"
        ),
        _ => metadse_nn::format::atomic_write(&path, digest.as_bytes())
            .unwrap_or_else(|e| panic!("could not record digest in {path}: {e}")),
    }
}
