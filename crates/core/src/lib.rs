//! # metadse
//!
//! Reproduction of **MetaDSE** (DAC 2025): cross-workload CPU design-space
//! exploration as a few-shot meta-learning problem.
//!
//! The crate implements the paper's two-stage pipeline on top of the
//! workspace substrates:
//!
//! 1. **Upstream pre-training** ([`maml`]): a transformer surrogate
//!    ([`predictor::TransformerPredictor`]) is meta-trained with MAML
//!    (Algorithm 1) across source workloads, treating each workload as a
//!    task distribution; meta-validation selects the shipped θ*.
//! 2. **Downstream adaptation** ([`wam`]): the workload-adaptive
//!    architectural mask is distilled from pre-training attention
//!    statistics (Fig. 4) and fine-tuned — together with the model — on a
//!    few shots from the unseen target workload (Algorithm 2).
//!
//! Baselines ([`trendse`]), per-task evaluation ([`evaluation`]),
//! experiment harnesses for every paper table/figure ([`experiment`]), a
//! surrogate-driven explorer ([`explorer`]), and crash-safe training
//! checkpoints with fault-injectable IO ([`checkpoint`]) complete the
//! system.
//!
//! # Example
//!
//! ```no_run
//! use metadse::experiment::{Environment, Scale};
//!
//! // Build per-workload datasets with the analytical simulator, pre-train
//! // with MAML, adapt with WAM, and evaluate on the paper's test split.
//! let env = Environment::build(&Scale::quick(), 7);
//! let result = metadse::experiment::run_fig5(&env, &Scale::quick());
//! for row in &result.rows {
//!     println!("{}: MetaDSE RMSE {:.3}", row.workload, row.metadse);
//! }
//! ```

pub mod ablation;
pub mod checkpoint;
pub mod evaluation;
pub mod experiment;
pub mod explorer;
pub mod maml;
pub mod predictor;
pub mod servable;
pub mod shard;
pub mod trendse;
pub mod wam;

pub use checkpoint::{CheckpointConfig, Checkpointer, FaultMode, FaultSpec, TrainState};
pub use evaluation::{EvalSummary, TaskScores};
pub use explorer::{Explorer, ExplorerConfig, ExplorerState, FrontDelta, ParetoEntry};
pub use maml::{MamlConfig, PretrainReport};
pub use predictor::{PredictorConfig, TransformerPredictor};
pub use servable::ServablePredictor;
pub use shard::{shard_of, ShardSpec};
pub use trendse::{TrEnDse, TrEnDseConfig, TrEnDseTransformer};
pub use wam::{AdaptConfig, AttentionStats, WamConfig};
