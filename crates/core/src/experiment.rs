//! Experiment harness: one function per table/figure of the paper.
//!
//! Every experiment runs at a configurable [`Scale`]; `Scale::paper()`
//! matches the paper's counts (15 × 200 meta-tasks, 1000 evaluation tasks
//! per workload) while `Scale::scaled()` (the binaries' default) and
//! `Scale::quick()` (tests, Criterion) shrink the counts so a single CPU
//! core finishes in minutes or seconds. The *structure* of each experiment
//! is identical at every scale.

use std::collections::BTreeMap;

use metadse_obs as obs;
use metadse_obs::report;
use metadse_parallel::ParallelConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

use metadse_mlkit::metrics::{geometric_mean, mean, std_dev};
use metadse_mlkit::wasserstein::distance_matrix;
use metadse_mlkit::{GradientBoosting, RandomForest, Regressor};
use metadse_nn::layers::Module;
use metadse_sim::{ConfigPoint, DesignSpace, Elem, Simulator};
use metadse_workloads::{Dataset, Metric, Sample, SpecWorkload, TaskSampler, WorkloadSplit};

use crate::evaluation::{EvalSummary, TaskScores};
use crate::maml::{self, MamlConfig};
use crate::predictor::{PredictorConfig, TransformerPredictor};
use crate::trendse::{fit_pooled_baseline, TrEnDse, TrEnDseConfig, TrEnDseTransformer};
use crate::wam::{self, AdaptConfig, WamConfig};

/// Knobs controlling the cost of every experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Scale {
    /// Simulated design points per workload dataset.
    pub samples_per_workload: usize,
    /// MAML pre-training configuration.
    pub maml: MamlConfig,
    /// Evaluation tasks per test workload.
    pub eval_tasks: usize,
    /// Downstream support shots per evaluation task (paper: 10).
    pub eval_support: usize,
    /// Query points per evaluation task.
    pub eval_query: usize,
    /// Downstream adaptation settings (Algorithm 2).
    pub adapt: AdaptConfig,
    /// WAM mask generation settings.
    pub wam: WamConfig,
    /// TrEnDSE baseline settings.
    pub trendse: TrEnDseConfig,
    /// Predictor geometry.
    pub predictor: PredictorConfig,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for dataset simulation and the per-task adaptation
    /// sweeps (`Some(1)` = exact serial path; `None` defers to
    /// `METADSE_THREADS`, then the machine). Meta-training threads live in
    /// [`MamlConfig::parallel`].
    pub parallel: ParallelConfig,
}

impl Scale {
    /// Paper-scale counts (hours on one core; use the binaries' default
    /// scale unless you mean it).
    pub fn paper() -> Scale {
        Scale {
            samples_per_workload: 2000,
            maml: MamlConfig::paper(),
            eval_tasks: 1000,
            eval_support: 10,
            eval_query: 45,
            adapt: AdaptConfig::default(),
            wam: WamConfig::default(),
            trendse: TrEnDseConfig::default(),
            predictor: PredictorConfig::default(),
            seed: 7,
            parallel: ParallelConfig::default(),
        }
    }

    /// Single-core default: same experiment structure, reduced counts.
    pub fn scaled() -> Scale {
        Scale {
            samples_per_workload: 300,
            maml: MamlConfig::scaled(),
            eval_tasks: 10,
            trendse: TrEnDseConfig {
                source_cap: 150,
                ..TrEnDseConfig::default()
            },
            ..Scale::paper()
        }
    }

    /// Seconds-scale settings for tests and Criterion benches.
    pub fn quick() -> Scale {
        Scale {
            samples_per_workload: 200,
            maml: MamlConfig::tiny(),
            eval_tasks: 3,
            eval_support: 8,
            eval_query: 20,
            trendse: TrEnDseConfig {
                source_cap: 40,
                ..TrEnDseConfig::default()
            },
            predictor: PredictorConfig {
                d_model: 16,
                heads: 2,
                depth: 1,
                d_hidden: 32,
                head_hidden: 16,
                ..PredictorConfig::default()
            },
            ..Scale::paper()
        }
    }
}

/// Shared experimental environment: the design space, the paper's
/// workload split, and per-workload datasets drawn uniformly from the same
/// design-space distribution (independently per workload, so no design
/// point leaks between source and target datasets; label *distributions*
/// remain directly comparable, as Fig. 2 requires).
///
/// Power labels are rescaled by the pooled training-split standard
/// deviation so IPC and power losses live on comparable scales; RMSE for
/// power is therefore reported in normalized units (MAPE and EV are
/// scale-invariant).
#[derive(Debug, Clone)]
pub struct Environment {
    /// The Table I design space.
    pub space: DesignSpace,
    /// Train/validation/test workload assignment.
    pub split: WorkloadSplit,
    /// Datasets per workload.
    pub datasets: BTreeMap<SpecWorkload, Dataset>,
    /// Divisor applied to raw power labels.
    pub power_scale: Elem,
}

impl Environment {
    /// Simulates datasets for every workload in the paper split.
    pub fn build(scale: &Scale, seed: u64) -> Environment {
        Environment::build_with_split(scale, WorkloadSplit::paper(), seed)
    }

    /// Simulates datasets for a custom split.
    ///
    /// Each workload's design points are sampled **independently** — as in
    /// separate simulation campaigns — so a target task's query
    /// configurations never appear verbatim in any source dataset.
    pub fn build_with_split(scale: &Scale, split: WorkloadSplit, seed: u64) -> Environment {
        let _span = obs::span("experiment/build_env");
        let space = DesignSpace::new();
        let simulator = Simulator::new();
        let mut rng = StdRng::seed_from_u64(seed);

        let mut raw: BTreeMap<SpecWorkload, Dataset> = BTreeMap::new();
        for &w in split
            .train
            .iter()
            .chain(&split.validation)
            .chain(&split.test)
        {
            let points: Vec<ConfigPoint> = (0..scale.samples_per_workload)
                .map(|_| space.random_point(&mut rng))
                .collect();
            raw.insert(
                w,
                Dataset::generate_at_with(&space, &simulator, w, &points, &scale.parallel),
            );
        }

        // Normalize power by the training-split standard deviation.
        let train_power: Vec<Elem> = split
            .train
            .iter()
            .flat_map(|w| raw[w].labels(Metric::Power))
            .collect();
        let power_scale = std_dev(&train_power).max(1e-9);
        let datasets = raw
            .into_iter()
            .map(|(w, ds)| {
                let samples = ds
                    .samples()
                    .iter()
                    .map(|s| Sample {
                        features: s.features.clone(),
                        ipc: s.ipc,
                        power_w: s.power_w / power_scale,
                    })
                    .collect();
                (w, Dataset::from_samples(ds.workload_name(), samples))
            })
            .collect();

        Environment {
            space,
            split,
            datasets,
            power_scale,
        }
    }

    /// Dataset of one workload.
    ///
    /// # Panics
    ///
    /// Panics if the workload is not part of the split.
    pub fn dataset(&self, workload: SpecWorkload) -> &Dataset {
        &self.datasets[&workload]
    }

    /// Clones the training datasets (source workloads).
    pub fn train_datasets(&self) -> Vec<Dataset> {
        self.split
            .train
            .iter()
            .map(|w| self.dataset(*w).clone())
            .collect()
    }

    /// Clones the validation datasets.
    pub fn validation_datasets(&self) -> Vec<Dataset> {
        self.split
            .validation
            .iter()
            .map(|w| self.dataset(*w).clone())
            .collect()
    }
}

/// Pre-trains a MetaDSE predictor on the environment's training split and
/// builds its WAM mask. Returns `(model, mask)`.
///
/// When the `METADSE_CACHE` environment variable is set, pre-trained
/// parameters are checkpointed under `results/checkpoints/` keyed by the
/// full experimental configuration, so repeated harness runs skip the
/// meta-training cost.
pub fn pretrain_metadse(
    env: &Environment,
    scale: &Scale,
    metric: Metric,
    maml: &MamlConfig,
) -> (TransformerPredictor, metadse_nn::layers::Param) {
    let _span = obs::span("experiment/pretrain");
    let model = TransformerPredictor::new(scale.predictor, scale.seed);

    let cache_path = std::env::var("METADSE_CACHE").ok().map(|_| {
        // Bump CACHE_VERSION whenever the simulator or model architecture
        // changes in a way that invalidates previously trained parameters.
        const CACHE_VERSION: u32 = 1;
        // The thread count never changes the trained parameters
        // (parallelism is bit-identical), and checkpoint/resume is
        // bit-identical to an uninterrupted run, so neither may change
        // the key.
        let key_maml = MamlConfig {
            parallel: ParallelConfig::default(),
            checkpoint: None,
            ..maml.clone()
        };
        let key = format!(
            "v{CACHE_VERSION}|{:?}|{:?}|{:?}|{}|{}|{:?}",
            key_maml, scale.predictor, metric, scale.samples_per_workload, scale.seed, env.split
        );
        let mut hash: u64 = 0xcbf29ce484222325;
        for b in key.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
        let dir = std::path::Path::new("results").join("checkpoints");
        let _ = std::fs::create_dir_all(&dir);
        dir.join(format!("pretrain-{hash:016x}.ckpt"))
    });

    let loaded = cache_path.as_ref().is_some_and(|p| {
        p.exists() && metadse_nn::serialize::load_params(&model.params(), p).is_ok()
    });
    if !loaded {
        // `METADSE_CKPT=<dir>` turns on crash-safe training checkpoints
        // for harness runs whose config does not already request them.
        let env_maml;
        let maml = match (
            &maml.checkpoint,
            crate::checkpoint::CheckpointConfig::from_env(),
        ) {
            (None, Some(ckpt)) => {
                env_maml = MamlConfig {
                    checkpoint: Some(ckpt),
                    ..maml.clone()
                };
                &env_maml
            }
            _ => maml,
        };
        maml::pretrain(
            &model,
            &env.train_datasets(),
            &env.validation_datasets(),
            metric,
            maml,
        );
        if let Some(path) = &cache_path {
            if let Err(e) = metadse_nn::serialize::save_params(&model.params(), path) {
                report::warn(format!(
                    "could not write checkpoint {}: {e}",
                    path.display()
                ));
            }
        }
    }

    let mask = wam::generate_mask(&model, &env.train_datasets(), &scale.wam, 64);
    (model, mask)
}

/// Pre-trains a MetaDSE predictor and packages it — together with its WAM
/// mask — as a sealed [`crate::ServablePredictor`] artifact ready for
/// publication into a serving model registry.
pub fn pretrain_servable(
    env: &Environment,
    scale: &Scale,
    metric: Metric,
    maml: &MamlConfig,
) -> crate::ServablePredictor {
    let (model, mask) = pretrain_metadse(env, scale, metric, maml);
    let label = match metric {
        Metric::Ipc => "ipc",
        Metric::Power => "power",
    };
    crate::ServablePredictor::capture(&model, Some(&mask), label)
}

// ---------------------------------------------------------------------
// Fig. 2 — Wasserstein distances among workloads
// ---------------------------------------------------------------------

/// Result of the Fig. 2 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Result {
    /// Workload names, matrix order.
    pub names: Vec<String>,
    /// Symmetric Wasserstein-distance matrix over IPC distributions.
    pub matrix: Vec<Vec<Elem>>,
}

/// Fig. 2: pairwise Wasserstein distances between the workloads' IPC
/// label distributions over a shared configuration sample.
pub fn run_fig2(env: &Environment) -> Fig2Result {
    let mut names = Vec::new();
    let mut samples = Vec::new();
    for (w, ds) in &env.datasets {
        names.push(w.name().to_string());
        samples.push(ds.labels(Metric::Ipc));
    }
    Fig2Result {
        names,
        matrix: distance_matrix(&samples),
    }
}

// ---------------------------------------------------------------------
// Fig. 5 — per-workload IPC RMSE of the four frameworks
// ---------------------------------------------------------------------

/// One bar group of Fig. 5 (a test workload, or the GEOMEAN column).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Row {
    /// Workload name (or "GEOMEAN").
    pub workload: String,
    /// TrEnDSE mean RMSE.
    pub trendse: Elem,
    /// TrEnDSE-Transformer mean RMSE.
    pub trendse_transformer: Elem,
    /// MetaDSE without WAM mean RMSE.
    pub metadse_no_wam: Elem,
    /// Full MetaDSE mean RMSE.
    pub metadse: Elem,
}

/// Result of the Fig. 5 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Result {
    /// Per-workload rows.
    pub rows: Vec<Fig5Row>,
    /// Geometric mean across workloads.
    pub geomean: Fig5Row,
}

/// Fig. 5: IPC prediction RMSE per test workload for TrEnDSE,
/// TrEnDSE-Transformer, MetaDSE-w/o-WAM, and MetaDSE.
pub fn run_fig5(env: &Environment, scale: &Scale) -> Fig5Result {
    let metric = Metric::Ipc;
    let (model, mask) = pretrain_metadse(env, scale, metric, &scale.maml);
    let trendse = TrEnDse::new(env.train_datasets(), metric, scale.trendse.clone());
    let trendse_tx = TrEnDseTransformer::new(
        env.train_datasets(),
        metric,
        scale.trendse.clone(),
        scale.predictor,
    );

    let sampler = TaskSampler::new(scale.eval_support, scale.eval_query);
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0x5f5f);
    let mut rows = Vec::new();
    for &w in &env.split.test {
        let ds = env.dataset(w);
        let mut s_trendse = TaskScores::new();
        let mut s_tx = TaskScores::new();
        let mut s_plain = TaskScores::new();
        let mut s_metadse = TaskScores::new();
        // Pre-sampling the workload's tasks keeps the RNG stream identical
        // to the per-task loop while letting the MetaDSE adaptation sweep
        // fan out across threads.
        let tasks: Vec<metadse_workloads::Task> = (0..scale.eval_tasks)
            .map(|_| sampler.sample(ds, metric, &mut rng))
            .collect();
        for task in &tasks {
            let p = trendse.adapt_and_predict(&task.support_x, &task.support_y, &task.query_x);
            s_trendse.push(&task.query_y, &p);
            let p = trendse_tx.adapt_and_predict(&task.support_x, &task.support_y, &task.query_x);
            s_tx.push(&task.query_y, &p);
        }
        let plain = wam::adapt_sweep(&model, &tasks, None, &scale.adapt, &scale.parallel);
        let masked = wam::adapt_sweep(&model, &tasks, Some(&mask), &scale.adapt, &scale.parallel);
        for ((task, p_plain), p_masked) in tasks.iter().zip(&plain).zip(&masked) {
            s_plain.push(&task.query_y, p_plain);
            s_metadse.push(&task.query_y, p_masked);
        }
        rows.push(Fig5Row {
            workload: w.name().to_string(),
            trendse: s_trendse.summary().rmse_mean,
            trendse_transformer: s_tx.summary().rmse_mean,
            metadse_no_wam: s_plain.summary().rmse_mean,
            metadse: s_metadse.summary().rmse_mean,
        });
    }
    let geo = |f: &dyn Fn(&Fig5Row) -> Elem| -> Elem {
        geometric_mean(&rows.iter().map(f).collect::<Vec<_>>())
    };
    let geomean = Fig5Row {
        workload: "GEOMEAN".to_string(),
        trendse: geo(&|r| r.trendse),
        trendse_transformer: geo(&|r| r.trendse_transformer),
        metadse_no_wam: geo(&|r| r.metadse_no_wam),
        metadse: geo(&|r| r.metadse),
    };
    Fig5Result { rows, geomean }
}

/// Fits the pooled RF and GBRT baselines of Tables II/III on one task and
/// scores their query predictions.
fn score_pooled_baselines(
    sources: &[Dataset],
    metric: Metric,
    task: &metadse_workloads::Task,
    scale: &Scale,
    s_rf: &mut TaskScores,
    s_gbrt: &mut TaskScores,
) {
    let mut rf = RandomForest::new(30, 10, 2, scale.seed);
    fit_pooled_baseline(
        &mut rf,
        sources,
        metric,
        &task.support_x,
        &task.support_y,
        scale.trendse.source_cap,
        scale.trendse.support_weight,
    );
    s_rf.push(&task.query_y, &rf.predict(&task.query_x));

    let mut gbrt = GradientBoosting::new(80, 0.1, 3, 2);
    fit_pooled_baseline(
        &mut gbrt,
        sources,
        metric,
        &task.support_x,
        &task.support_y,
        scale.trendse.source_cap,
        scale.trendse.support_weight,
    );
    s_gbrt.push(&task.query_y, &gbrt.predict(&task.query_x));
}

// ---------------------------------------------------------------------
// Table II — RMSE / MAPE / EV for RF, GBRT, TrEnDSE, MetaDSE
// ---------------------------------------------------------------------

/// One model row of Table II for one metric (IPC or power).
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Cell {
    /// Model name.
    pub model: String,
    /// Predicted metric.
    pub metric: Metric,
    /// Summary across all test workloads' tasks.
    pub summary: EvalSummary,
}

/// Result of the Table II experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Result {
    /// Cells for every (model, metric) pair.
    pub cells: Vec<Table2Cell>,
}

impl Table2Result {
    /// Looks up a cell.
    pub fn cell(&self, model: &str, metric: Metric) -> Option<&Table2Cell> {
        self.cells
            .iter()
            .find(|c| c.model == model && c.metric == metric)
    }
}

/// Table II: RF, GBRT, TrEnDSE, and MetaDSE on IPC and power prediction,
/// pooled over the five test workloads, with 95% confidence half-widths.
pub fn run_table2(env: &Environment, scale: &Scale) -> Table2Result {
    let mut cells = Vec::new();
    for metric in [Metric::Ipc, Metric::Power] {
        let (model, mask) = pretrain_metadse(env, scale, metric, &scale.maml);
        let trendse = TrEnDse::new(env.train_datasets(), metric, scale.trendse.clone());
        let sampler = TaskSampler::new(scale.eval_support, scale.eval_query);
        let mut rng = StdRng::seed_from_u64(scale.seed ^ 0xa0a0);
        let sources = env.train_datasets();

        let mut s_rf = TaskScores::new();
        let mut s_gbrt = TaskScores::new();
        let mut s_trendse = TaskScores::new();
        let mut s_metadse = TaskScores::new();
        for &w in &env.split.test {
            let ds = env.dataset(w);
            let tasks: Vec<metadse_workloads::Task> = (0..scale.eval_tasks)
                .map(|_| sampler.sample(ds, metric, &mut rng))
                .collect();
            for task in &tasks {
                score_pooled_baselines(&sources, metric, task, scale, &mut s_rf, &mut s_gbrt);

                let p = trendse.adapt_and_predict(&task.support_x, &task.support_y, &task.query_x);
                s_trendse.push(&task.query_y, &p);
            }
            let masked =
                wam::adapt_sweep(&model, &tasks, Some(&mask), &scale.adapt, &scale.parallel);
            for (task, p) in tasks.iter().zip(&masked) {
                s_metadse.push(&task.query_y, p);
            }
        }
        for (name, scores) in [
            ("RF", s_rf),
            ("GBRT", s_gbrt),
            ("TrEnDSE", s_trendse),
            ("MetaDSE", s_metadse),
        ] {
            cells.push(Table2Cell {
                model: name.to_string(),
                metric,
                summary: scores.summary(),
            });
        }
    }
    Table2Result { cells }
}

// ---------------------------------------------------------------------
// Fig. 6 — sensitivity to the upstream (pre-training) support size
// ---------------------------------------------------------------------

/// One point of Fig. 6.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Point {
    /// Upstream support-set size used during pre-training.
    pub pretrain_support: usize,
    /// Mean IPC RMSE over test tasks.
    pub rmse: Elem,
    /// Mean explained variance over test tasks.
    pub ev: Elem,
}

/// Result of the Fig. 6 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Result {
    /// Downstream support size held fixed (paper: 10).
    pub downstream_support: usize,
    /// One point per upstream support size.
    pub points: Vec<Fig6Point>,
}

/// Fig. 6: fix the downstream support size and sweep the upstream
/// (pre-training) support size; transfer is best when the two align.
pub fn run_fig6(env: &Environment, scale: &Scale, sizes: &[usize]) -> Fig6Result {
    let metric = Metric::Ipc;
    let downstream = 10;
    let sampler = TaskSampler::new(downstream, scale.eval_query);
    let mut points = Vec::new();
    for &s in sizes {
        let maml = MamlConfig {
            support_size: s,
            ..scale.maml.clone()
        };
        let (model, mask) = pretrain_metadse(env, scale, metric, &maml);
        let mut scores = TaskScores::new();
        let mut rng = StdRng::seed_from_u64(scale.seed ^ 0xf1f6);
        for &w in &env.split.test {
            let ds = env.dataset(w);
            let tasks: Vec<metadse_workloads::Task> = (0..scale.eval_tasks)
                .map(|_| sampler.sample(ds, metric, &mut rng))
                .collect();
            let masked =
                wam::adapt_sweep(&model, &tasks, Some(&mask), &scale.adapt, &scale.parallel);
            for (task, p) in tasks.iter().zip(&masked) {
                scores.push(&task.query_y, p);
            }
        }
        let summary = scores.summary();
        points.push(Fig6Point {
            pretrain_support: s,
            rmse: summary.rmse_mean,
            ev: summary.ev_mean,
        });
    }
    Fig6Result {
        downstream_support: downstream,
        points,
    }
}

// ---------------------------------------------------------------------
// Table III — sensitivity to the downstream support size K
// ---------------------------------------------------------------------

/// One row of Table III: a model's IPC RMSE at each downstream K.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Model name.
    pub model: String,
    /// `(K, mean RMSE)` pairs.
    pub rmse_by_k: Vec<(usize, Elem)>,
}

/// Result of the Table III experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Result {
    /// Rows for RF, GBRT, Baseline (MetaDSE w/o WAM), MetaDSE.
    pub rows: Vec<Table3Row>,
}

/// Table III: IPC RMSE as the downstream adaptation support size K grows,
/// with the upstream support size fixed at 10.
pub fn run_table3(env: &Environment, scale: &Scale, ks: &[usize]) -> Table3Result {
    let metric = Metric::Ipc;
    let maml = MamlConfig {
        support_size: 10,
        ..scale.maml.clone()
    };
    let (model, mask) = pretrain_metadse(env, scale, metric, &maml);

    let sources = env.train_datasets();
    let mut rf_row = Vec::new();
    let mut gbrt_row = Vec::new();
    let mut base_row = Vec::new();
    let mut metadse_row = Vec::new();
    for &k in ks {
        let sampler = TaskSampler::new(k, scale.eval_query);
        let mut rng = StdRng::seed_from_u64(scale.seed ^ 0x3a3a ^ k as u64);
        let mut s_rf = TaskScores::new();
        let mut s_gbrt = TaskScores::new();
        let mut s_base = TaskScores::new();
        let mut s_meta = TaskScores::new();
        for &w in &env.split.test {
            let ds = env.dataset(w);
            let tasks: Vec<metadse_workloads::Task> = (0..scale.eval_tasks)
                .map(|_| sampler.sample(ds, metric, &mut rng))
                .collect();
            for task in &tasks {
                score_pooled_baselines(&sources, metric, task, scale, &mut s_rf, &mut s_gbrt);
            }
            let plain = wam::adapt_sweep(&model, &tasks, None, &scale.adapt, &scale.parallel);
            let masked =
                wam::adapt_sweep(&model, &tasks, Some(&mask), &scale.adapt, &scale.parallel);
            for ((task, p_plain), p_masked) in tasks.iter().zip(&plain).zip(&masked) {
                s_base.push(&task.query_y, p_plain);
                s_meta.push(&task.query_y, p_masked);
            }
        }
        rf_row.push((k, s_rf.summary().rmse_mean));
        gbrt_row.push((k, s_gbrt.summary().rmse_mean));
        base_row.push((k, s_base.summary().rmse_mean));
        metadse_row.push((k, s_meta.summary().rmse_mean));
    }
    Table3Result {
        rows: vec![
            Table3Row {
                model: "RF".to_string(),
                rmse_by_k: rf_row,
            },
            Table3Row {
                model: "GBRT".to_string(),
                rmse_by_k: gbrt_row,
            },
            Table3Row {
                model: "Baseline".to_string(),
                rmse_by_k: base_row,
            },
            Table3Row {
                model: "MetaDSE".to_string(),
                rmse_by_k: metadse_row,
            },
        ],
    }
}

/// Geometric-mean helper re-exported for harness binaries.
pub fn geomean_of(values: &[Elem]) -> Elem {
    geometric_mean(values)
}

/// Arithmetic-mean helper re-exported for harness binaries.
pub fn mean_of(values: &[Elem]) -> Elem {
    mean(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_env() -> (Environment, Scale) {
        let scale = Scale::quick();
        let env = Environment::build(&scale, 3);
        (env, scale)
    }

    #[test]
    fn environment_contains_every_split_workload() {
        let (env, scale) = quick_env();
        assert_eq!(env.datasets.len(), 17);
        for ds in env.datasets.values() {
            assert_eq!(ds.len(), scale.samples_per_workload);
        }
        assert!(env.power_scale > 0.0);
    }

    #[test]
    fn power_labels_are_normalized() {
        let (env, _) = quick_env();
        let pooled: Vec<f64> = env
            .split
            .train
            .iter()
            .flat_map(|w| env.dataset(*w).labels(Metric::Power))
            .collect();
        let sd = std_dev(&pooled);
        assert!((sd - 1.0).abs() < 1e-9, "train power std {sd} should be 1");
    }

    #[test]
    fn fig2_matrix_shape_and_symmetry() {
        let (env, _) = quick_env();
        let r = run_fig2(&env);
        assert_eq!(r.names.len(), 17);
        assert_eq!(r.matrix.len(), 17);
        for i in 0..17 {
            assert_eq!(r.matrix[i][i], 0.0);
            for j in 0..17 {
                assert!((r.matrix[i][j] - r.matrix[j][i]).abs() < 1e-12);
            }
        }
        // Workloads genuinely differ: some pair must be far apart.
        let max = r.matrix.iter().flatten().cloned().fold(0.0_f64, f64::max);
        assert!(max > 0.1, "max distance {max} suspiciously small");
    }

    #[test]
    fn fig5_produces_five_rows_and_geomean() {
        let (env, scale) = quick_env();
        let r = run_fig5(&env, &scale);
        assert_eq!(r.rows.len(), 5);
        assert_eq!(r.geomean.workload, "GEOMEAN");
        for row in &r.rows {
            assert!(row.trendse > 0.0);
            assert!(row.metadse > 0.0);
        }
    }

    #[test]
    fn table3_rows_cover_requested_ks() {
        let (env, scale) = quick_env();
        let r = run_table3(&env, &scale, &[5, 10]);
        assert_eq!(r.rows.len(), 4);
        for row in &r.rows {
            let ks: Vec<usize> = row.rmse_by_k.iter().map(|(k, _)| *k).collect();
            assert_eq!(ks, vec![5, 10]);
        }
    }
}
