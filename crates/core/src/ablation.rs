//! Ablation studies of MetaDSE's design choices (DESIGN.md §5).
//!
//! Not paper experiments, but the natural questions a reviewer asks:
//! how much of WAM's benefit comes from mask density, and what does the
//! exact second-order meta-gradient buy over the first-order
//! approximation?

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use metadse_nn::Elem;
use metadse_workloads::{Metric, TaskSampler};

use crate::evaluation::TaskScores;
use crate::experiment::{pretrain_metadse, Environment, Scale};
use crate::maml::MamlConfig;
use crate::wam::{self, WamConfig};

/// One point of the WAM-density ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct WamAblationPoint {
    /// Frequency threshold used to build the mask.
    pub frequency_threshold: Elem,
    /// Fraction of off-diagonal interactions left unmasked.
    pub kept_fraction: Elem,
    /// Mean IPC RMSE over test tasks with this mask.
    pub rmse: Elem,
}

/// Sweeps the WAM frequency threshold: 0 keeps everything (mask ≈ no-op),
/// large thresholds mask almost all interactions.
pub fn run_wam_density_ablation(
    env: &Environment,
    scale: &Scale,
    thresholds: &[Elem],
) -> Vec<WamAblationPoint> {
    let metric = Metric::Ipc;
    let (model, _) = pretrain_metadse(env, scale, metric, &scale.maml);
    let sampler = TaskSampler::new(scale.eval_support, scale.eval_query);

    thresholds
        .iter()
        .map(|&threshold| {
            let cfg = WamConfig {
                frequency_threshold: threshold,
                ..scale.wam.clone()
            };
            let mask = wam::generate_mask(&model, &env.train_datasets(), &cfg, 64);
            let seq = model.config().num_params;
            let values = mask.get().to_vec();
            let off_diag_total = (seq * seq - seq) as Elem;
            let kept = values
                .iter()
                .enumerate()
                .filter(|(i, &v)| (i / seq) != (i % seq) && v == 0.0)
                .count() as Elem;

            let mut scores = TaskScores::new();
            let mut rng = StdRng::seed_from_u64(scale.seed ^ 0xab1a);
            for &w in &env.split.test {
                let ds = env.dataset(w);
                for _ in 0..scale.eval_tasks {
                    let task = sampler.sample(ds, metric, &mut rng);
                    let p = wam::adapt_and_predict(&model, &task, Some(&mask), &scale.adapt);
                    scores.push(&task.query_y, &p);
                }
            }
            WamAblationPoint {
                frequency_threshold: threshold,
                kept_fraction: kept / off_diag_total,
                rmse: scores.summary().rmse_mean,
            }
        })
        .collect()
}

/// Result of the first- vs second-order MAML ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderAblation {
    /// Mean IPC RMSE with first-order meta-gradients (FOMAML).
    pub first_order_rmse: Elem,
    /// Mean IPC RMSE with exact second-order meta-gradients.
    pub second_order_rmse: Elem,
    /// Pre-training wall time, first order (seconds).
    pub first_order_secs: Elem,
    /// Pre-training wall time, second order (seconds).
    pub second_order_secs: Elem,
}

/// Pre-trains twice — FOMAML vs full MAML — from identical initialization
/// and compares post-adaptation accuracy and training cost.
pub fn run_order_ablation(env: &Environment, scale: &Scale) -> OrderAblation {
    let metric = Metric::Ipc;
    let sampler = TaskSampler::new(scale.eval_support, scale.eval_query);

    let evaluate = |maml: &MamlConfig| -> (Elem, Elem) {
        let t0 = Instant::now();
        let (model, mask) = pretrain_metadse(env, scale, metric, maml);
        let secs = t0.elapsed().as_secs_f64();
        let mut scores = TaskScores::new();
        let mut rng = StdRng::seed_from_u64(scale.seed ^ 0x0a0b);
        for &w in &env.split.test {
            let ds = env.dataset(w);
            for _ in 0..scale.eval_tasks {
                let task = sampler.sample(ds, metric, &mut rng);
                let p = wam::adapt_and_predict(&model, &task, Some(&mask), &scale.adapt);
                scores.push(&task.query_y, &p);
            }
        }
        (scores.summary().rmse_mean, secs)
    };

    let fo = MamlConfig {
        second_order: false,
        ..scale.maml.clone()
    };
    let so = MamlConfig {
        second_order: true,
        ..scale.maml.clone()
    };
    let (first_order_rmse, first_order_secs) = evaluate(&fo);
    let (second_order_rmse, second_order_secs) = evaluate(&so);
    OrderAblation {
        first_order_rmse,
        second_order_rmse,
        first_order_secs,
        second_order_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wam_density_ablation_reports_kept_fractions() {
        let mut scale = Scale::quick();
        scale.eval_tasks = 1;
        scale.samples_per_workload = 70;
        let env = Environment::build(&scale, 21);
        let points = run_wam_density_ablation(&env, &scale, &[0.0, 0.9]);
        assert_eq!(points.len(), 2);
        // Threshold 0 keeps every interaction; 0.9 keeps almost none.
        assert!(points[0].kept_fraction > 0.99);
        assert!(points[1].kept_fraction < points[0].kept_fraction);
        assert!(points.iter().all(|p| p.rmse.is_finite() && p.rmse > 0.0));
    }

    #[test]
    fn order_ablation_runs_both_modes() {
        let mut scale = Scale::quick();
        scale.eval_tasks = 1;
        scale.samples_per_workload = 70;
        scale.maml.epochs = 1;
        scale.maml.iterations_per_epoch = 2;
        let env = Environment::build(&scale, 22);
        let result = run_order_ablation(&env, &scale);
        assert!(result.first_order_rmse.is_finite());
        assert!(result.second_order_rmse.is_finite());
        assert!(result.second_order_secs > 0.0);
    }
}
