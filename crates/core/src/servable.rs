//! Sealed, thread-portable predictor artifacts for serving.
//!
//! The training pipeline ends with a `(TransformerPredictor, WAM mask)`
//! pair living inside one experiment binary — `Rc`-backed tensors that
//! cannot cross a thread boundary, let alone a process boundary. A
//! [`ServablePredictor`] is the extraction of everything a *consumer* of
//! that pair needs, as plain `Send + Sync` data:
//!
//! * the predictor geometry ([`crate::predictor::PredictorConfig`]),
//! * the metric label the model was trained for (`"ipc"`, `"power"`, …),
//! * every parameter's name/shape/values (the `metadse-nn` checkpoint
//!   wire format, embedded verbatim),
//! * optionally the WAM attention mask.
//!
//! [`ServablePredictor::instantiate`] rebuilds a live, thread-local
//! [`TransformerPredictor`] (with the mask installed) whose `predict` is
//! bit-identical to the captured model's — the mechanism the serving
//! worker pool uses, one instantiation per worker thread.
//!
//! On disk an artifact is a sealed container ([`metadse_nn::format`]):
//!
//! ```text
//! magic "MDSESRVM" | u32 version | payload | u64 fnv1a
//! ```
//!
//! The payload additionally embeds a **fingerprint** — an FNV-1a hash of
//! the geometry, metric, and every parameter bit — computed at capture
//! time and re-verified against the decoded content on load, so an
//! artifact whose seal was recomputed over altered bytes still cannot
//! impersonate the captured model.

use std::io;
use std::path::Path;

use metadse_nn::format::{self, fnv1a, seal, unseal, ByteReader, ByteWriter};
use metadse_nn::layers::{Module, Param};
use metadse_nn::serialize::{
    entries_from_bytes, load_params_from_bytes, params_to_bytes, CheckpointError,
};
use metadse_nn::{Elem, Tensor};

use crate::predictor::{PredictorConfig, TransformerPredictor};

const MAGIC: &[u8; 8] = b"MDSESRVM";
const VERSION: u32 = 1;

/// A trained predictor (and optional WAM mask) as plain portable data.
#[derive(Debug, Clone, PartialEq)]
pub struct ServablePredictor {
    /// Predictor geometry.
    pub config: PredictorConfig,
    /// Metric the model predicts (free-form label, e.g. `"ipc"`).
    pub metric: String,
    /// Parameter payload in the `metadse-nn` checkpoint wire format.
    params: Vec<u8>,
    /// WAM mask values (`num_params × num_params`), if captured.
    mask: Option<Vec<Elem>>,
    /// Content fingerprint (geometry + metric + params + mask).
    fingerprint: u64,
}

impl ServablePredictor {
    /// Captures `model` (and optionally its WAM `mask`) into a portable
    /// artifact.
    ///
    /// # Panics
    ///
    /// Panics if a provided mask is not `num_params × num_params`.
    pub fn capture(
        model: &TransformerPredictor,
        mask: Option<&Param>,
        metric: &str,
    ) -> ServablePredictor {
        let config = *model.config();
        let mask = mask.map(|m| {
            let t = m.get();
            assert_eq!(
                t.shape(),
                &[config.num_params, config.num_params],
                "WAM mask must be [num_params, num_params]"
            );
            t.to_vec()
        });
        let params = params_to_bytes(&model.params());
        let fingerprint = content_fingerprint(&config, metric, &params, mask.as_deref());
        ServablePredictor {
            config,
            metric: metric.to_string(),
            params,
            mask,
            fingerprint,
        }
    }

    /// The artifact's content fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Whether a WAM mask was captured.
    pub fn has_mask(&self) -> bool {
        self.mask.is_some()
    }

    /// Decodes the embedded parameter payload into named
    /// `(name, shape, values)` entries, in payload order, without
    /// instantiating a model — the extraction path for consumers that
    /// compile the weights into another execution form (e.g. the
    /// serving plan compiler in `metadse-serve`).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] for a malformed payload (possible
    /// only for hand-built artifacts; capture/decode both validate).
    pub fn param_entries(&self) -> Result<Vec<metadse_nn::serialize::ParamEntry>, CheckpointError> {
        entries_from_bytes(&self.params)
    }

    /// The captured WAM mask values, row-major
    /// `[num_params × num_params]`, if present.
    pub fn mask_values(&self) -> Option<&[Elem]> {
        self.mask.as_deref()
    }

    /// Rebuilds a live predictor from the artifact: fresh construction at
    /// the captured geometry, parameters loaded by name, mask installed
    /// when present. Each call is independent, so worker threads can each
    /// hold their own instance.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] if the embedded parameter payload does
    /// not match the captured geometry (possible only for hand-built
    /// artifacts; capture/decode both validate).
    pub fn instantiate(&self) -> Result<TransformerPredictor, CheckpointError> {
        let model = TransformerPredictor::new(self.config, 0);
        load_params_from_bytes(&model.params(), &self.params)?;
        if let Some(mask) = &self.mask {
            let seq = self.config.num_params;
            model.install_mask(Param::new(
                "wam.mask",
                Tensor::from_vec(mask.clone(), &[seq, seq]),
            ));
        }
        Ok(model)
    }

    /// Encodes the artifact as a sealed container.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u64(self.fingerprint);
        w.str(&self.metric);
        for dim in [
            self.config.num_params,
            self.config.d_model,
            self.config.heads,
            self.config.depth,
            self.config.d_hidden,
            self.config.head_hidden,
        ] {
            w.u64(dim as u64);
        }
        w.u64(self.params.len() as u64);
        w.bytes(&self.params);
        match &self.mask {
            Some(mask) => {
                w.u32(1);
                w.f64_slice(mask);
            }
            None => w.u32(0),
        }
        seal(MAGIC, VERSION, &w.into_bytes())
    }

    /// Decodes a sealed artifact, verifying the container checksum, the
    /// parameter payload, and the content fingerprint.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Format`] for torn/corrupt/truncated
    /// input or a fingerprint that does not match the decoded content.
    pub fn from_bytes(bytes: &[u8]) -> Result<ServablePredictor, CheckpointError> {
        let (version, payload) = unseal(MAGIC, bytes)?;
        if version != VERSION {
            return Err(CheckpointError::Format(format!(
                "unsupported servable artifact version {version}"
            )));
        }
        let mut r = ByteReader::new(payload);
        let fingerprint = r.u64()?;
        let metric = r.str()?;
        let mut dims = [0usize; 6];
        for d in &mut dims {
            *d = r.u64()? as usize;
        }
        let config = PredictorConfig {
            num_params: dims[0],
            d_model: dims[1],
            heads: dims[2],
            depth: dims[3],
            d_hidden: dims[4],
            head_hidden: dims[5],
        };
        let params_len = r.u64()? as usize;
        let params = r.take(params_len)?.to_vec();
        // Validate the embedded payload now, not at first instantiate.
        entries_from_bytes(&params)?;
        let mask = match r.u32()? {
            0 => None,
            1 => {
                let m = r.f64_vec()?;
                if m.len() != config.num_params * config.num_params {
                    return Err(CheckpointError::Format(format!(
                        "mask has {} entries for {} tokens",
                        m.len(),
                        config.num_params
                    )));
                }
                Some(m)
            }
            other => {
                return Err(CheckpointError::Format(format!(
                    "bad mask presence flag {other}"
                )))
            }
        };
        if r.remaining() != 0 {
            return Err(CheckpointError::Format(format!(
                "{} trailing bytes after servable artifact",
                r.remaining()
            )));
        }
        let computed = content_fingerprint(&config, &metric, &params, mask.as_deref());
        if computed != fingerprint {
            return Err(CheckpointError::Format(format!(
                "fingerprint mismatch: stored {fingerprint:016x}, content {computed:016x}"
            )));
        }
        Ok(ServablePredictor {
            config,
            metric,
            params,
            mask,
            fingerprint,
        })
    }

    /// Writes the sealed artifact to `path` atomically.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        format::atomic_write(path, &self.to_bytes())
    }

    /// Reads and decodes a sealed artifact from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] for unreadable files and
    /// [`CheckpointError::Format`] for corrupt ones.
    pub fn load(path: impl AsRef<Path>) -> Result<ServablePredictor, CheckpointError> {
        let bytes = std::fs::read(path)?;
        ServablePredictor::from_bytes(&bytes)
    }
}

/// FNV-1a over the geometry, metric label, parameter payload, and mask
/// bits — the artifact's identity.
fn content_fingerprint(
    config: &PredictorConfig,
    metric: &str,
    params: &[u8],
    mask: Option<&[Elem]>,
) -> u64 {
    let mut w = ByteWriter::new();
    for dim in [
        config.num_params,
        config.d_model,
        config.heads,
        config.depth,
        config.d_hidden,
        config.head_hidden,
    ] {
        w.u64(dim as u64);
    }
    w.str(metric);
    w.u64(params.len() as u64);
    w.bytes(params);
    match mask {
        Some(m) => {
            w.u32(1);
            w.f64_slice(m);
        }
        None => w.u32(0),
    }
    fnv1a(&w.into_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_model(seed: u64) -> TransformerPredictor {
        TransformerPredictor::new(
            PredictorConfig {
                num_params: 6,
                d_model: 8,
                heads: 2,
                depth: 1,
                d_hidden: 16,
                head_hidden: 8,
            },
            seed,
        )
    }

    fn sample_inputs() -> Vec<Vec<Elem>> {
        (0..4)
            .map(|i| (0..6).map(|j| ((i * 6 + j) as f64 * 0.17) % 1.0).collect())
            .collect()
    }

    #[test]
    fn capture_instantiate_is_bit_identical() {
        let model = small_model(11);
        let servable = ServablePredictor::capture(&model, None, "ipc");
        let rebuilt = servable.instantiate().unwrap();
        let x = sample_inputs();
        let a = model.predict(&x);
        let b = rebuilt.predict(&x);
        for (va, vb) in a.iter().zip(&b) {
            assert_eq!(va.to_bits(), vb.to_bits());
        }
    }

    #[test]
    fn captured_mask_is_installed_on_instantiate() {
        let model = small_model(12);
        let x = sample_inputs();
        let unmasked = model.predict(&x);
        let mut mask = vec![-3.0; 36];
        for i in 0..6 {
            mask[i * 6 + i] = 0.0;
        }
        let mask = Param::new("wam", Tensor::from_vec(mask, &[6, 6]));
        model.install_mask(mask.clone());
        let masked = model.predict(&x);
        assert_ne!(unmasked, masked);

        let servable = ServablePredictor::capture(&model, Some(&mask), "ipc");
        assert!(servable.has_mask());
        let rebuilt = servable.instantiate().unwrap();
        let b = rebuilt.predict(&x);
        for (va, vb) in masked.iter().zip(&b) {
            assert_eq!(va.to_bits(), vb.to_bits());
        }
    }

    #[test]
    fn bytes_roundtrip_preserves_everything() {
        let model = small_model(13);
        let servable = ServablePredictor::capture(&model, None, "power");
        let decoded = ServablePredictor::from_bytes(&servable.to_bytes()).unwrap();
        assert_eq!(decoded, servable);
        assert_eq!(decoded.metric, "power");
        assert_eq!(decoded.fingerprint(), servable.fingerprint());
    }

    #[test]
    fn every_truncation_is_rejected() {
        let servable = ServablePredictor::capture(&small_model(14), None, "ipc");
        let bytes = servable.to_bytes();
        // Step 7 keeps the suite fast; the sealed container already
        // rejects every cut, this confirms the error surfaces as Format.
        for cut in (0..bytes.len()).step_by(7) {
            assert!(matches!(
                ServablePredictor::from_bytes(&bytes[..cut]),
                Err(CheckpointError::Format(_))
            ));
        }
    }

    #[test]
    fn fingerprint_distinguishes_models_and_metrics() {
        let a = ServablePredictor::capture(&small_model(1), None, "ipc");
        let b = ServablePredictor::capture(&small_model(2), None, "ipc");
        let c = ServablePredictor::capture(&small_model(1), None, "power");
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        // Same content → same fingerprint.
        let a2 = ServablePredictor::capture(&small_model(1), None, "ipc");
        assert_eq!(a.fingerprint(), a2.fingerprint());
    }

    #[test]
    fn save_load_roundtrips_on_disk() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("metadse-servable-{}.model", std::process::id()));
        let servable = ServablePredictor::capture(&small_model(15), None, "ipc");
        servable.save(&path).unwrap();
        let loaded = ServablePredictor::load(&path).unwrap();
        assert_eq!(loaded, servable);
        std::fs::remove_file(&path).ok();
    }
}
