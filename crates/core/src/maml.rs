//! MAML-based pre-training (paper Algorithm 1).
//!
//! The inner loop adapts *fast weights* on a task's support set; the outer
//! loop updates the meta-parameters θ from the adapted model's query loss.
//! Fast weights are functional: the update `θ̂ ← θ̂ − α ∇L` is built with
//! differentiable tensor operations and **swapped into** the model's
//! parameter slots, so
//!
//! * with `second_order = false`, inner gradients are detached and the
//!   meta-gradient is the first-order MAML approximation (FOMAML), and
//! * with `second_order = true`, inner gradients stay in the graph and the
//!   meta-gradient differentiates *through* the inner updates — full MAML,
//!   enabled by the double-backward autodiff of `metadse-nn`.
//!
//! # Parallel execution
//!
//! The tasks of one meta-batch are independent: each starts from the same
//! meta-parameters and only its gradient flows back. [`pretrain`] exploits
//! this without making the `Rc`-based autograd graph `Send` — tasks are
//! sampled serially (so the RNG stream never depends on the thread count),
//! each task's inner loop and meta-gradient run as a pure function of the
//! meta-parameter snapshot on scoped workers, and the gradient buffers are
//! reduced in task order before the Adam step. The result is bit-identical
//! to a serial run for the same seed; `threads = Some(1)` skips the
//! snapshot entirely and runs the exact serial path.

use metadse_obs as obs;
use metadse_obs::report;
use metadse_parallel::ParallelConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

use metadse_nn::autograd::grad;
use metadse_nn::layers::{self, Module, Param};
use metadse_nn::optim::{Adam, Optimizer};
use metadse_nn::{Elem, Tensor};
use metadse_workloads::{Dataset, Metric, Task, TaskSampler};

use crate::checkpoint::{CheckpointConfig, Checkpointer, TrainState};
use crate::predictor::TransformerPredictor;

/// Hyperparameters of the MAML pre-training stage.
#[derive(Debug, Clone, PartialEq)]
pub struct MamlConfig {
    /// Inner-loop (task adaptation) learning rate α.
    pub inner_lr: Elem,
    /// Outer-loop (meta) learning rate β for Adam.
    pub outer_lr: Elem,
    /// Inner-loop gradient steps per task.
    pub inner_steps: usize,
    /// Meta-training epochs.
    pub epochs: usize,
    /// Meta-iterations per epoch (each draws one task per train workload).
    pub iterations_per_epoch: usize,
    /// Support-set size per task.
    pub support_size: usize,
    /// Query-set size per task.
    pub query_size: usize,
    /// Validation tasks per workload per epoch.
    pub val_tasks: usize,
    /// Use full second-order MAML instead of FOMAML.
    pub second_order: bool,
    /// RNG seed for task sampling.
    pub seed: u64,
    /// Worker threads for per-task fan-out (`Some(1)` = exact serial
    /// path; `None` = `METADSE_THREADS`, then the machine).
    pub parallel: ParallelConfig,
    /// Crash-safe checkpointing of the training state (`None` = off).
    /// Resuming from a checkpoint written by a killed run reproduces the
    /// uninterrupted run bit-for-bit; see [`crate::checkpoint`].
    pub checkpoint: Option<CheckpointConfig>,
}

impl MamlConfig {
    /// Paper-scale settings (§VI-A): 15 epochs × 200 tasks per workload,
    /// 5 support / 45 query, 5 inner SGD steps. The paper's learning rates
    /// (α = 1e−5, β = 1e−4) are tuned to their dataset scale; ours default
    /// to the values that converge on the analytical simulator's label
    /// scale (documented in EXPERIMENTS.md).
    pub fn paper() -> MamlConfig {
        MamlConfig {
            inner_lr: 0.02,
            outer_lr: 1e-3,
            inner_steps: 5,
            epochs: 15,
            iterations_per_epoch: 200,
            support_size: 5,
            query_size: 45,
            val_tasks: 20,
            second_order: false,
            seed: 17,
            parallel: ParallelConfig::default(),
            checkpoint: None,
        }
    }

    /// Reduced-scale settings for a single CPU core: same structure,
    /// fewer iterations (used by default in the harness binaries).
    pub fn scaled() -> MamlConfig {
        MamlConfig {
            inner_lr: 0.02,
            epochs: 8,
            iterations_per_epoch: 30,
            val_tasks: 5,
            ..MamlConfig::paper()
        }
    }

    /// Tiny settings for unit/integration tests.
    pub fn tiny() -> MamlConfig {
        MamlConfig {
            epochs: 2,
            iterations_per_epoch: 6,
            inner_steps: 3,
            val_tasks: 3,
            ..MamlConfig::paper()
        }
    }
}

/// Outcome of a pre-training run.
#[derive(Debug, Clone, PartialEq)]
pub struct PretrainReport {
    /// Mean post-adaptation validation loss after each epoch.
    pub val_losses: Vec<Elem>,
    /// Epoch whose parameters were kept (meta-validation selection).
    pub best_epoch: usize,
    /// Best validation loss.
    pub best_val_loss: Elem,
    /// Mean meta-training query loss per epoch.
    pub train_losses: Vec<Elem>,
}

/// Runs the inner loop: adapts the model's parameter slots to the support
/// set with `steps` of functional SGD and returns the original tensors so
/// the caller can [`layers::restore`] them.
///
/// With `create_graph = true` the returned originals remain connected to
/// the fast weights (second-order MAML); with `false` the connection is
/// first-order only.
pub fn inner_adapt(
    model: &TransformerPredictor,
    support_x: &[Vec<Elem>],
    support_y: &[Elem],
    steps: usize,
    lr: Elem,
    create_graph: bool,
) -> Vec<Tensor> {
    let params = model.params();
    let theta = layers::snapshot(&params);
    let mut current = theta.clone();
    let mut first_loss = 0.0;
    let mut last_loss = 0.0;
    for step in 0..steps {
        let loss = model.mse_on(support_x, support_y);
        obs::with(|| {
            if step == 0 {
                first_loss = loss.value();
            }
            last_loss = loss.value();
        });
        let grads = grad(&loss, &current, create_graph);
        let updated: Vec<Tensor> = current
            .iter()
            .zip(&grads)
            .map(|(t, g)| t.sub(&g.mul_scalar(lr)))
            .collect();
        layers::restore(&params, &updated);
        current = updated;
    }
    obs::with(|| {
        if steps > 0 {
            // How much the support loss dropped over the inner loop —
            // the paper's "does adaptation help" signal per task.
            obs::histogram("maml/inner_loss_delta", first_loss - last_loss);
        }
    });
    theta
}

/// Evaluates `f(model, i)` for `i in 0..n`, returning results in index
/// order.
///
/// With one effective thread this runs inline on `model` itself — the
/// exact serial path, with no snapshotting and no spawned threads.
/// Otherwise each scoped worker rebuilds a thread-local predictor from a
/// plain-buffer snapshot of `model`'s parameters (the `Rc`-based autograd
/// graph never crosses threads), so `f` must be a pure function of the
/// model values and the index; index-ordered results make any subsequent
/// reduction bit-identical to the serial run.
pub(crate) fn fan_out_tasks<T, F>(
    model: &TransformerPredictor,
    parallel: &ParallelConfig,
    n: usize,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(&TransformerPredictor, usize) -> T + Sync,
{
    if parallel.workers_for(n) <= 1 {
        return (0..n).map(|i| f(model, i)).collect();
    }
    let snapshot = model.snapshot_values();
    let geometry = *model.config();
    parallel.run_indexed(n, |i| {
        // Each index pays a full predictor rebuild from the snapshot — the
        // dominant fan-out overhead on small task counts (see the
        // maml/worker_rebuilds counter and the trace_report attribution).
        obs::counter("maml/worker_rebuilds", 1);
        let worker = TransformerPredictor::new(geometry, 0);
        worker.load_values(&snapshot);
        f(&worker, i)
    })
}

/// One meta-batch member: inner-adapts `model` on the task, differentiates
/// the query loss w.r.t. the pre-adaptation parameters, restores the model
/// and returns `(query loss, per-parameter meta-gradient buffers)`.
///
/// Pure in the meta-parameters: the model is left exactly as found, so the
/// same function serves the serial loop and parallel workers.
fn task_meta_grads(
    model: &TransformerPredictor,
    task: &Task,
    config: &MamlConfig,
) -> (Elem, Vec<Vec<Elem>>) {
    let params = model.params();
    let theta = inner_adapt(
        model,
        &task.support_x,
        &task.support_y,
        config.inner_steps,
        config.inner_lr,
        config.second_order,
    );
    let query_loss = model.mse_on(&task.query_x, &task.query_y);
    let value = query_loss.value();
    let meta_grads = grad(&query_loss, &theta, false);
    layers::restore(&params, &theta);
    (value, meta_grads.iter().map(|g| g.to_vec()).collect())
}

/// Post-adaptation loss of the model on one task, leaving the model's
/// parameters untouched (adapt on support, evaluate on query, restore).
pub fn adapted_query_loss(
    model: &TransformerPredictor,
    task: &metadse_workloads::Task,
    steps: usize,
    lr: Elem,
) -> Elem {
    let params = model.params();
    let theta = inner_adapt(model, &task.support_x, &task.support_y, steps, lr, false);
    let loss = metadse_nn::autograd::no_grad(|| model.mse_on(&task.query_x, &task.query_y));
    layers::restore(&params, &theta);
    loss.value()
}

/// Hash of everything a checkpoint must agree on to be resumable: the
/// training configuration (with the execution-only `parallel` and
/// `checkpoint` fields canonicalized away, so a resume may change thread
/// counts or checkpoint cadence), the model's parameter geometry, and
/// the training task itself — source/validation workloads and the
/// target metric. The task matters because one binary can run several
/// pretrains with the same config into the same checkpoint directory
/// (fig5's leave-one-out splits, table2's IPC-then-power pass): without
/// it, a later pretrain would adopt an earlier one's final checkpoint.
fn config_fingerprint(
    config: &MamlConfig,
    train: &[Dataset],
    validation: &[Dataset],
    metric: Metric,
    params: &[Param],
) -> u64 {
    let canonical = MamlConfig {
        parallel: ParallelConfig::default(),
        checkpoint: None,
        ..config.clone()
    };
    let mut repr = format!("{canonical:?}|{metric:?}");
    for ds in train.iter().chain(validation) {
        repr.push_str(&format!("|{}:{}", ds.workload_name(), ds.len()));
    }
    for p in params {
        repr.push_str(&format!("|{}:{:?}", p.name(), p.shape()));
    }
    metadse_nn::format::fnv1a(repr.as_bytes())
}

/// Captures the complete training state and hands it to the
/// checkpointer. A failed write degrades gracefully: it is warned about
/// and counted (`ckpt/write_failures`), and training continues on the
/// exact same trajectory — checkpointing never touches the numerics.
#[allow(clippy::too_many_arguments)]
fn save_checkpoint(
    cp: &mut Checkpointer,
    fingerprint: u64,
    epoch: u64,
    iter: u64,
    global_iter: u64,
    rng: &StdRng,
    epoch_loss: Elem,
    epoch_count: usize,
    report: &PretrainReport,
    params: &[Param],
    best_params: &[Tensor],
    optimizer: &Adam,
) {
    let state = TrainState {
        fingerprint,
        epoch,
        iter,
        global_iter,
        rng: rng.state(),
        epoch_loss,
        epoch_count: epoch_count as u64,
        train_losses: report.train_losses.clone(),
        val_losses: report.val_losses.clone(),
        best_epoch: report.best_epoch as u64,
        best_val_loss: report.best_val_loss,
        lr: optimizer.learning_rate(),
        params: params.iter().map(|p| p.get().to_vec()).collect(),
        best_params: best_params.iter().map(Tensor::to_vec).collect(),
        adam: optimizer.export_state(),
    };
    if let Err(e) = cp.save(&state) {
        obs::counter("ckpt/write_failures", 1);
        report::warn(format!(
            "checkpoint: write failed ({e}); training continues without it"
        ));
    }
}

/// Meta-trains `model` on the training datasets, selecting the best epoch
/// by meta-validation (Algorithm 1 plus the paper's validation step).
///
/// With [`MamlConfig::checkpoint`] set, the complete training state is
/// persisted every `interval` meta-iterations and at every epoch
/// boundary, and a run that finds a compatible checkpoint resumes from
/// it — continuing the interrupted run's floating-point trajectory
/// bit-for-bit (same final parameters, same [`PretrainReport`]).
///
/// # Panics
///
/// Panics if `train` is empty or any dataset is smaller than
/// `support_size + query_size`.
pub fn pretrain(
    model: &TransformerPredictor,
    train: &[Dataset],
    validation: &[Dataset],
    metric: Metric,
    config: &MamlConfig,
) -> PretrainReport {
    assert!(!train.is_empty(), "need at least one training workload");
    let _span = obs::span("maml/pretrain");
    obs::gauge("maml/outer_lr", config.outer_lr);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let sampler = TaskSampler::new(config.support_size, config.query_size);
    let params = model.params();
    let mut optimizer = Adam::new(params.clone(), config.outer_lr);

    let mut report = PretrainReport {
        val_losses: Vec::with_capacity(config.epochs),
        best_epoch: 0,
        best_val_loss: Elem::INFINITY,
        train_losses: Vec::with_capacity(config.epochs),
    };
    let mut best_params: Vec<Tensor> = layers::clone_values(&params);

    let fingerprint = config_fingerprint(config, train, validation, metric, &params);
    let mut checkpointer = config
        .checkpoint
        .as_ref()
        .map(|c| Checkpointer::new(c.clone()));
    let mut start_epoch = 0usize;
    let mut resume_iter = 0usize;
    let mut global_iter = 0u64;
    let mut epoch_loss = 0.0;
    let mut epoch_count = 0usize;

    if let Some(cp) = checkpointer.as_mut() {
        match cp.load_latest() {
            Ok(Some((state, generation))) if state.fingerprint == fingerprint => {
                model.load_values(&state.params);
                best_params = state
                    .best_params
                    .iter()
                    .zip(&params)
                    .map(|(v, p)| Tensor::param_from_vec(v.clone(), &p.shape()))
                    .collect();
                optimizer
                    .import_state(&state.adam)
                    .expect("fingerprint-matched checkpoint has matching optimizer geometry");
                optimizer.set_learning_rate(state.lr);
                rng = StdRng::from_state(state.rng);
                report.train_losses = state.train_losses;
                report.val_losses = state.val_losses;
                report.best_epoch = state.best_epoch as usize;
                report.best_val_loss = state.best_val_loss;
                start_epoch = state.epoch as usize;
                resume_iter = state.iter as usize;
                global_iter = state.global_iter;
                epoch_loss = state.epoch_loss;
                epoch_count = state.epoch_count as usize;
                obs::counter("ckpt/resumes", 1);
                report::line(format!(
                    "checkpoint: resumed from generation {generation} \
                     (epoch {start_epoch}, iteration {resume_iter})"
                ));
            }
            Ok(Some(_)) => report::warn(
                "checkpoint: configuration fingerprint mismatch; ignoring checkpoints \
                 and starting fresh",
            ),
            Ok(None) => {}
            Err(e) => report::warn(format!("checkpoint: load failed ({e}); starting fresh")),
        }
    }

    for epoch in start_epoch..config.epochs {
        let _epoch_span = obs::span("maml/epoch");
        // `resume_iter` applies only to the epoch the checkpoint was
        // taken in; every other epoch starts from iteration 0 with
        // fresh loss accumulators.
        let first_iter = std::mem::take(&mut resume_iter);
        if first_iter == 0 {
            epoch_loss = 0.0;
            epoch_count = 0;
        }
        for it in first_iter..config.iterations_per_epoch {
            // One task from each source workload forms the meta-batch
            // (line 3 of Algorithm 1 samples tasks across workloads).
            // Sampling stays serial so the RNG stream is the same at any
            // thread count; the per-task work then fans out.
            let tasks: Vec<Task> = train
                .iter()
                .map(|dataset| sampler.sample(dataset, metric, &mut rng))
                .collect();
            let outcomes = fan_out_tasks(model, &config.parallel, tasks.len(), |m, i| {
                task_meta_grads(m, &tasks[i], config)
            });

            // Reduce in task order — the exact summation order of the
            // serial loop, so the averaged gradient is bit-identical.
            let mut accumulated: Option<Vec<Vec<Elem>>> = None;
            for (loss, grads) in outcomes {
                epoch_loss += loss;
                epoch_count += 1;
                accumulated = Some(match accumulated {
                    None => grads,
                    Some(mut acc) => {
                        for (a, g) in acc.iter_mut().zip(&grads) {
                            for (av, gv) in a.iter_mut().zip(g) {
                                *av += gv;
                            }
                        }
                        acc
                    }
                });
            }
            let inv = 1.0 / train.len() as Elem;
            let grads: Vec<Tensor> = accumulated
                .expect("at least one train workload")
                .into_iter()
                .zip(&params)
                .map(|(mut g, p)| {
                    for v in &mut g {
                        *v *= inv;
                    }
                    Tensor::from_vec(g, &p.shape())
                })
                .collect();
            obs::with(|| {
                let sq: Elem = grads
                    .iter()
                    .map(|g| g.to_vec().iter().map(|v| v * v).sum::<Elem>())
                    .sum();
                obs::histogram("maml/grad_norm", sq.sqrt());
            });
            optimizer.step(&grads);
            // One meta-iteration's tensors have all dropped by now; trim
            // the buffer pool so retained memory tracks the working set.
            metadse_nn::tensor::pool::reclaim();
            global_iter += 1;
            if let Some(cp) = checkpointer.as_mut() {
                let interval = cp.config().interval as u64;
                if interval > 0 && global_iter.is_multiple_of(interval) {
                    save_checkpoint(
                        cp,
                        fingerprint,
                        epoch as u64,
                        (it + 1) as u64,
                        global_iter,
                        &rng,
                        epoch_loss,
                        epoch_count,
                        &report,
                        &params,
                        &best_params,
                        &optimizer,
                    );
                }
                // Fault-harness kill switch: stop dead, like a SIGKILL —
                // no final checkpoint, no best-epoch restore.
                if cp.config().halt_after.is_some_and(|h| global_iter >= h) {
                    report::warn(format!(
                        "checkpoint: halting after meta-iteration {global_iter} \
                         (injected kill)"
                    ));
                    return report;
                }
            }
        }
        let train_loss = epoch_loss / epoch_count.max(1) as Elem;
        obs::gauge("maml/train_loss", train_loss);
        report.train_losses.push(train_loss);

        // Meta-validation (step 5 of Fig. 3): post-adaptation loss on
        // held-out workloads decides which epoch's θ* ships.
        let val_loss = meta_validate(model, validation, metric, config, &mut rng);
        obs::gauge("maml/val_loss", val_loss);
        report.val_losses.push(val_loss);
        if val_loss < report.best_val_loss {
            report.best_val_loss = val_loss;
            report.best_epoch = epoch;
            best_params = layers::clone_values(&params);
        }

        // Epoch-boundary checkpoint: captures the validation result and
        // the best-epoch selection the interval saves cannot see.
        if let Some(cp) = checkpointer.as_mut() {
            save_checkpoint(
                cp,
                fingerprint,
                (epoch + 1) as u64,
                0,
                global_iter,
                &rng,
                0.0,
                0,
                &report,
                &params,
                &best_params,
                &optimizer,
            );
        }
    }

    layers::restore(&params, &best_params);
    report
}

/// Mean post-adaptation query loss over the validation workloads.
fn meta_validate(
    model: &TransformerPredictor,
    validation: &[Dataset],
    metric: Metric,
    config: &MamlConfig,
    rng: &mut StdRng,
) -> Elem {
    if validation.is_empty() {
        return Elem::INFINITY;
    }
    let _span = obs::span("maml/validate");
    let sampler = TaskSampler::new(config.support_size, config.query_size);
    // Serial sampling (RNG stream fixed), parallel per-task adaptation,
    // task-order summation: bit-identical at any thread count.
    let mut tasks: Vec<Task> = Vec::with_capacity(validation.len() * config.val_tasks);
    for dataset in validation {
        for _ in 0..config.val_tasks {
            tasks.push(sampler.sample(dataset, metric, rng));
        }
    }
    let losses = fan_out_tasks(model, &config.parallel, tasks.len(), |m, i| {
        adapted_query_loss(m, &tasks[i], config.inner_steps, config.inner_lr)
    });
    let mut total = 0.0;
    for loss in &losses {
        total += loss;
    }
    total / losses.len() as Elem
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::PredictorConfig;
    use metadse_workloads::Sample;
    use rand::Rng;

    /// Synthetic task family: y = dot(w_task, x) where w_task varies by
    /// "workload" — meta-learnable structure with task variation.
    fn synthetic_dataset(seed: u64, dim: usize, n: usize, shift: f64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let samples = (0..n)
            .map(|_| {
                let features: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect();
                let y: f64 = features
                    .iter()
                    .enumerate()
                    .map(|(j, v)| v * ((j as f64 * 0.7 + shift).sin() + 1.0))
                    .sum::<f64>()
                    / dim as f64;
                Sample {
                    features,
                    ipc: y,
                    power_w: y * 10.0,
                }
            })
            .collect();
        Dataset::from_samples(format!("synthetic-{seed}"), samples)
    }

    fn tiny_model(dim: usize) -> TransformerPredictor {
        TransformerPredictor::new(
            PredictorConfig {
                num_params: dim,
                d_model: 8,
                heads: 2,
                depth: 1,
                d_hidden: 16,
                head_hidden: 8,
            },
            5,
        )
    }

    #[test]
    fn inner_adapt_reduces_support_loss_and_restores() {
        let dim = 6;
        let model = tiny_model(dim);
        let ds = synthetic_dataset(1, dim, 60, 0.0);
        let sampler = TaskSampler::new(8, 8);
        let mut rng = StdRng::seed_from_u64(2);
        let task = sampler.sample(&ds, Metric::Ipc, &mut rng);

        let before = model.mse_on(&task.support_x, &task.support_y).value();
        let params = model.params();
        let theta = inner_adapt(&model, &task.support_x, &task.support_y, 20, 0.05, false);
        let after = model.mse_on(&task.support_x, &task.support_y).value();
        assert!(
            after < before,
            "adaptation should reduce loss: {before} -> {after}"
        );

        layers::restore(&params, &theta);
        let restored = model.mse_on(&task.support_x, &task.support_y).value();
        assert!((restored - before).abs() < 1e-12, "restore must be exact");
    }

    #[test]
    fn pretraining_improves_post_adaptation_loss() {
        let dim = 6;
        let model = tiny_model(dim);
        let train: Vec<Dataset> = (0..3)
            .map(|i| synthetic_dataset(10 + i, dim, 80, i as f64 * 0.5))
            .collect();
        let val = vec![synthetic_dataset(20, dim, 80, 0.25)];
        let test = synthetic_dataset(30, dim, 80, 0.8);

        let cfg = MamlConfig {
            inner_lr: 0.05,
            outer_lr: 3e-3,
            inner_steps: 3,
            epochs: 3,
            iterations_per_epoch: 10,
            support_size: 5,
            query_size: 20,
            val_tasks: 4,
            second_order: false,
            seed: 3,
            parallel: ParallelConfig::default(),
            checkpoint: None,
        };

        // Baseline: random-init model adapted on test tasks.
        let sampler = TaskSampler::new(cfg.support_size, cfg.query_size);
        let mut rng = StdRng::seed_from_u64(4);
        let tasks: Vec<_> = (0..6)
            .map(|_| sampler.sample(&test, Metric::Ipc, &mut rng))
            .collect();
        let before: f64 = tasks
            .iter()
            .map(|t| adapted_query_loss(&model, t, cfg.inner_steps, cfg.inner_lr))
            .sum::<f64>()
            / tasks.len() as f64;

        let report = pretrain(&model, &train, &val, Metric::Ipc, &cfg);
        let after: f64 = tasks
            .iter()
            .map(|t| adapted_query_loss(&model, t, cfg.inner_steps, cfg.inner_lr))
            .sum::<f64>()
            / tasks.len() as f64;

        assert!(
            after < before,
            "meta-pretraining should help unseen tasks: {before} -> {after}"
        );
        assert_eq!(report.val_losses.len(), cfg.epochs);
        assert!(report.best_val_loss.is_finite());
    }

    #[test]
    fn second_order_runs_and_differs_from_first_order() {
        let dim = 4;
        let ds = vec![synthetic_dataset(40, dim, 60, 0.1)];
        let val = vec![synthetic_dataset(41, dim, 60, 0.2)];
        let cfg_fo = MamlConfig {
            inner_lr: 0.05,
            outer_lr: 1e-3,
            inner_steps: 2,
            epochs: 1,
            iterations_per_epoch: 4,
            support_size: 5,
            query_size: 10,
            val_tasks: 2,
            second_order: false,
            seed: 5,
            parallel: ParallelConfig::default(),
            checkpoint: None,
        };
        let cfg_so = MamlConfig {
            second_order: true,
            ..cfg_fo.clone()
        };
        let m1 = tiny_model(dim);
        let m2 = tiny_model(dim);
        // Identical inits (same seed), different MAML order.
        pretrain(&m1, &ds, &val, Metric::Ipc, &cfg_fo);
        pretrain(&m2, &ds, &val, Metric::Ipc, &cfg_so);
        let probe = vec![vec![0.3; dim]];
        let p1 = m1.predict(&probe)[0];
        let p2 = m2.predict(&probe)[0];
        assert!(
            (p1 - p2).abs() > 1e-12,
            "second-order term should change the trajectory"
        );
    }

    #[test]
    fn pretrain_report_tracks_best_epoch() {
        let dim = 4;
        let model = tiny_model(dim);
        let ds = vec![synthetic_dataset(50, dim, 60, 0.0)];
        let val = vec![synthetic_dataset(51, dim, 60, 0.1)];
        let report = pretrain(
            &model,
            &ds,
            &val,
            Metric::Ipc,
            &MamlConfig {
                inner_lr: 0.05,
                outer_lr: 1e-3,
                inner_steps: 2,
                epochs: 3,
                iterations_per_epoch: 4,
                support_size: 5,
                query_size: 10,
                val_tasks: 2,
                second_order: false,
                seed: 6,
                parallel: ParallelConfig::default(),
                checkpoint: None,
            },
        );
        assert!(report.best_epoch < 3);
        let min = report
            .val_losses
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert_eq!(report.best_val_loss, min);
    }
}
