//! Surrogate-driven design-space exploration.
//!
//! The end product of the MetaDSE pipeline: once a predictor has adapted to
//! a new workload from a handful of simulations, it can sweep millions of
//! configurations in the time one gem5 run would take. The explorer
//! combines a broad random sweep with hill-climbing refinement around the
//! current Pareto front (maximize IPC, minimize power).

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::SeedableRng;

use metadse_sim::{ConfigPoint, DesignSpace, Elem};

/// A design point with its predicted objectives.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoEntry {
    /// The design point.
    pub point: ConfigPoint,
    /// Predicted instructions per cycle (maximized).
    pub ipc: Elem,
    /// Predicted power (minimized).
    pub power: Elem,
}

/// Exploration budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExplorerConfig {
    /// Random design points evaluated in the initial sweep.
    pub initial_samples: usize,
    /// Hill-climbing rounds around the Pareto front.
    pub refinement_rounds: usize,
    /// Front entries whose neighborhoods are expanded each round.
    pub beam: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        ExplorerConfig {
            initial_samples: 512,
            refinement_rounds: 3,
            beam: 8,
            seed: 99,
        }
    }
}

/// `a` dominates `b` when it is no worse on both objectives and strictly
/// better on one.
fn dominates(a: &ParetoEntry, b: &ParetoEntry) -> bool {
    (a.ipc >= b.ipc && a.power <= b.power) && (a.ipc > b.ipc || a.power < b.power)
}

/// Dominated hypervolume of a front with respect to a reference point
/// `(ipc_ref, power_ref)` — the usual two-objective DSE quality metric
/// (IPC maximized, power minimized). Entries outside the reference box
/// contribute nothing.
///
/// # Example
///
/// ```
/// use metadse::explorer::{hypervolume, ParetoEntry};
/// use metadse_sim::ConfigPoint;
///
/// let front = vec![ParetoEntry {
///     point: ConfigPoint::new(vec![0; 21]),
///     ipc: 2.0,
///     power: 5.0,
/// }];
/// // Box between (0 IPC, 10 W) and the point: 2 IPC × 5 W.
/// assert_eq!(hypervolume(&front, 0.0, 10.0), 10.0);
/// ```
pub fn hypervolume(entries: &[ParetoEntry], ipc_ref: Elem, power_ref: Elem) -> Elem {
    // Reduce to the non-dominated set inside the reference box, sorted by
    // descending IPC; sweep accumulates disjoint rectangles.
    let mut front: Vec<&ParetoEntry> = entries
        .iter()
        .filter(|e| e.ipc > ipc_ref && e.power < power_ref)
        .collect();
    front.sort_by(|a, b| b.ipc.total_cmp(&a.ipc));
    let mut volume = 0.0;
    let mut best_power = power_ref;
    for e in front {
        if e.power < best_power {
            volume += (e.ipc - ipc_ref) * (best_power - e.power);
            best_power = e.power;
        }
    }
    volume
}

/// Extracts the non-dominated subset, sorted by descending IPC.
pub fn pareto_front(entries: &[ParetoEntry]) -> Vec<ParetoEntry> {
    let mut front: Vec<ParetoEntry> = Vec::new();
    for e in entries {
        if entries.iter().any(|other| dominates(other, e)) {
            continue;
        }
        if !front.iter().any(|f| f.point == e.point) {
            front.push(e.clone());
        }
    }
    front.sort_by(|a, b| b.ipc.total_cmp(&a.ipc));
    front
}

/// One round's incremental change to a Pareto front: entries that
/// joined and points that were dominated out. Transmitting deltas
/// instead of whole fronts is what makes per-round session replies
/// cheap — and [`apply_front_delta`] proves they lose nothing.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FrontDelta {
    /// Entries present in the new front but not the previous one.
    pub added: Vec<ParetoEntry>,
    /// Points present in the previous front but dominated out of the
    /// new one.
    pub removed: Vec<ConfigPoint>,
}

impl FrontDelta {
    /// True when the round changed nothing.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// The delta taking `prev` to `next` (both Pareto fronts; membership is
/// keyed by design point).
pub fn front_delta(prev: &[ParetoEntry], next: &[ParetoEntry]) -> FrontDelta {
    let added = next
        .iter()
        .filter(|e| !prev.iter().any(|p| p.point == e.point))
        .cloned()
        .collect();
    let removed = prev
        .iter()
        .filter(|e| !next.iter().any(|n| n.point == e.point))
        .map(|e| e.point.clone())
        .collect();
    FrontDelta { added, removed }
}

/// Applies one delta in place: drop `removed` points, append `added`
/// entries. The result is a set equal to the next front; use
/// [`canonical_front`] before comparing order-sensitively.
pub fn apply_front_delta(front: &mut Vec<ParetoEntry>, delta: &FrontDelta) {
    front.retain(|e| !delta.removed.contains(&e.point));
    front.extend(delta.added.iter().cloned());
}

/// Total, deterministic front order for bit-exact comparison across
/// processes: descending IPC, then ascending power (both by exact bit
/// pattern via `total_cmp`), then point indices.
pub fn canonical_front(mut front: Vec<ParetoEntry>) -> Vec<ParetoEntry> {
    front.sort_by(|a, b| {
        b.ipc
            .total_cmp(&a.ipc)
            .then_with(|| a.power.total_cmp(&b.power))
            .then_with(|| a.point.indices().cmp(b.point.indices()))
    });
    front
}

/// Explores the design space with a surrogate objective function.
///
/// `predict` maps a batch of encoded design points (normalized features)
/// to `(ipc, power)` predictions — typically two adapted
/// [`crate::TransformerPredictor`]s, but any surrogate fits.
///
/// # Example
///
/// ```
/// use metadse::explorer::{explore_pareto, ExplorerConfig};
/// use metadse_sim::DesignSpace;
///
/// let space = DesignSpace::new();
/// // Toy surrogate: IPC = mean feature, power = squared mean.
/// let front = explore_pareto(
///     &space,
///     |batch| {
///         batch
///             .iter()
///             .map(|x| {
///                 let m = x.iter().sum::<f64>() / x.len() as f64;
///                 (m, m * m * 4.0)
///             })
///             .collect()
///     },
///     &ExplorerConfig {
///         initial_samples: 64,
///         refinement_rounds: 1,
///         beam: 4,
///         seed: 1,
///     },
/// );
/// assert!(!front.is_empty());
/// ```
pub fn explore_pareto(
    space: &DesignSpace,
    mut predict: impl FnMut(&[Vec<Elem>]) -> Vec<(Elem, Elem)>,
    config: &ExplorerConfig,
) -> Vec<ParetoEntry> {
    let mut explorer = Explorer::new(config);
    while let Some(points) = explorer.propose(space) {
        let entries = if points.is_empty() {
            Vec::new()
        } else {
            let encoded: Vec<Vec<Elem>> = points.iter().map(|p| space.encode(p)).collect();
            let objectives = predict(&encoded);
            points
                .into_iter()
                .zip(objectives)
                .map(|(point, (ipc, power))| ParetoEntry { point, ipc, power })
                .collect()
        };
        explorer.record(entries);
    }
    explorer.front()
}

/// Resumable snapshot of an [`Explorer`] at a round boundary. Every
/// field is plain data, so the exploration cursor can ride inside a
/// sealed checkpoint: the RNG stream words *are* the sampling cursor
/// (the same property `maml::pretrain` resume relies on), `seen` is the
/// dedup set sorted for a deterministic byte encoding, and `archive`
/// keeps evaluation order (Pareto tie-breaks are insertion-stable).
#[derive(Debug, Clone, PartialEq)]
pub struct ExplorerState {
    /// RNG stream words ([`StdRng::state`]).
    pub rng: [u64; 4],
    /// Rounds already proposed *and* recorded (0 = nothing yet; 1 =
    /// initial sweep done; `refinement_rounds + 1` = exploration done).
    pub rounds_done: u64,
    /// Every point ever proposed, sorted by indices.
    pub seen: Vec<ConfigPoint>,
    /// Every evaluated entry, in evaluation order.
    pub archive: Vec<ParetoEntry>,
}

/// The exploration loop of [`explore_pareto`], unrolled into a
/// resumable propose/record stepper so a serving layer can own the
/// evaluation (batching, caching, deadlines) and a killed run can
/// resume bit-identically from an [`ExplorerState`].
///
/// Round `0` is the broad random sweep; rounds `1..=refinement_rounds`
/// hill-climb around the current front. Every [`propose`](Explorer::propose)
/// must be answered by exactly one [`record`](Explorer::record) before
/// the next propose (or a state capture).
#[derive(Debug)]
pub struct Explorer {
    config: ExplorerConfig,
    rng: StdRng,
    seen: HashSet<ConfigPoint>,
    archive: Vec<ParetoEntry>,
    rounds_done: usize,
    pending: bool,
}

impl Explorer {
    /// A fresh explorer seeded from `config.seed`.
    pub fn new(config: &ExplorerConfig) -> Explorer {
        Explorer {
            config: *config,
            rng: StdRng::seed_from_u64(config.seed),
            seen: HashSet::new(),
            archive: Vec::new(),
            rounds_done: 0,
            pending: false,
        }
    }

    /// The exploration budget this explorer runs under.
    pub fn config(&self) -> &ExplorerConfig {
        &self.config
    }

    /// Rounds fully completed (proposed and recorded).
    pub fn rounds_done(&self) -> u64 {
        self.rounds_done as u64 - u64::from(self.pending)
    }

    /// Total rounds this configuration will run (initial sweep plus
    /// refinements).
    pub fn rounds_total(&self) -> u64 {
        self.config.refinement_rounds as u64 + 1
    }

    /// True once every round has been proposed and recorded.
    pub fn is_done(&self) -> bool {
        !self.pending && self.rounds_done > self.config.refinement_rounds
    }

    /// The never-seen points of the next round, or `None` when the
    /// budget is exhausted. May be `Some` and empty (every candidate
    /// was already seen) — the caller must still [`record`](Explorer::record).
    ///
    /// # Panics
    ///
    /// When the previous propose has not been recorded yet.
    pub fn propose(&mut self, space: &DesignSpace) -> Option<Vec<ConfigPoint>> {
        assert!(!self.pending, "propose() called before record()");
        if self.rounds_done > self.config.refinement_rounds {
            return None;
        }
        let candidates: Vec<ConfigPoint> = if self.rounds_done == 0 {
            (0..self.config.initial_samples)
                .map(|_| space.random_point(&mut self.rng))
                .collect()
        } else {
            let front = pareto_front(&self.archive);
            let mut candidates = Vec::new();
            for entry in front.iter().take(self.config.beam) {
                candidates.extend(space.neighbors(&entry.point));
            }
            candidates
        };
        let fresh: Vec<ConfigPoint> = candidates
            .into_iter()
            .filter(|p| self.seen.insert(p.clone()))
            .collect();
        self.rounds_done += 1;
        self.pending = true;
        Some(fresh)
    }

    /// Feeds the evaluated entries of the last [`propose`](Explorer::propose)
    /// back into the archive.
    ///
    /// # Panics
    ///
    /// When no propose is outstanding.
    pub fn record(&mut self, entries: Vec<ParetoEntry>) {
        assert!(self.pending, "record() called without a propose()");
        self.archive.extend(entries);
        self.pending = false;
    }

    /// The current Pareto front over everything evaluated so far.
    pub fn front(&self) -> Vec<ParetoEntry> {
        pareto_front(&self.archive)
    }

    /// Everything evaluated so far, in evaluation order.
    pub fn archive(&self) -> &[ParetoEntry] {
        &self.archive
    }

    /// Snapshot at a round boundary, for checkpointing.
    ///
    /// # Panics
    ///
    /// When a propose is outstanding — mid-round state is not
    /// resumable (the proposed points live only in the caller).
    pub fn state(&self) -> ExplorerState {
        assert!(!self.pending, "state() captured mid-round");
        let mut seen: Vec<ConfigPoint> = self.seen.iter().cloned().collect();
        seen.sort_by(|a, b| a.indices().cmp(b.indices()));
        ExplorerState {
            rng: self.rng.state(),
            rounds_done: self.rounds_done as u64,
            seen,
            archive: self.archive.clone(),
        }
    }

    /// Rebuilds an explorer from a snapshot; continues bit-identically
    /// to the run that captured it.
    pub fn from_state(config: &ExplorerConfig, state: &ExplorerState) -> Explorer {
        Explorer {
            config: *config,
            rng: StdRng::from_state(state.rng),
            seen: state.seen.iter().cloned().collect(),
            archive: state.archive.clone(),
            rounds_done: state.rounds_done as usize,
            pending: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(ipc: f64, power: f64, tag: usize) -> ParetoEntry {
        ParetoEntry {
            point: ConfigPoint::new(vec![tag; 21]),
            ipc,
            power,
        }
    }

    #[test]
    fn hypervolume_of_staircase_front() {
        // Two points forming a staircase against reference (0, 10):
        // (3, 6) contributes 3×4; (1, 2) adds 1×4 more.
        let front = vec![entry(3.0, 6.0, 0), entry(1.0, 2.0, 1)];
        assert_eq!(hypervolume(&front, 0.0, 10.0), 16.0);
        // Order independence.
        let rev = vec![entry(1.0, 2.0, 1), entry(3.0, 6.0, 0)];
        assert_eq!(hypervolume(&rev, 0.0, 10.0), 16.0);
    }

    #[test]
    fn hypervolume_ignores_points_outside_reference_box() {
        let front = vec![entry(2.0, 12.0, 0), entry(-1.0, 5.0, 1)];
        assert_eq!(hypervolume(&front, 0.0, 10.0), 0.0);
        assert_eq!(hypervolume(&[], 0.0, 10.0), 0.0);
    }

    #[test]
    fn hypervolume_dominated_point_adds_nothing() {
        let base = vec![entry(3.0, 4.0, 0)];
        let with_dominated = vec![entry(3.0, 4.0, 0), entry(2.0, 6.0, 1)];
        assert_eq!(
            hypervolume(&base, 0.0, 10.0),
            hypervolume(&with_dominated, 0.0, 10.0)
        );
    }

    #[test]
    fn front_drops_dominated_points() {
        let entries = vec![
            entry(2.0, 10.0, 0),
            entry(1.0, 20.0, 1), // dominated by 0
            entry(3.0, 30.0, 2),
            entry(0.5, 5.0, 3),
        ];
        let front = pareto_front(&entries);
        let tags: Vec<usize> = front.iter().map(|e| e.point.indices()[0]).collect();
        assert!(tags.contains(&0) && tags.contains(&2) && tags.contains(&3));
        assert!(!tags.contains(&1));
    }

    #[test]
    fn front_is_sorted_by_descending_ipc() {
        let entries = vec![entry(1.0, 1.0, 0), entry(3.0, 3.0, 1), entry(2.0, 2.0, 2)];
        let front = pareto_front(&entries);
        let ipcs: Vec<f64> = front.iter().map(|e| e.ipc).collect();
        assert_eq!(ipcs, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn exploration_improves_over_pure_random_front() {
        // Objective with structure: IPC rewards feature 0, power punishes
        // feature 1 — the ideal corner is (hi, lo). Refinement should walk
        // toward it.
        let space = DesignSpace::new();
        let objective = |batch: &[Vec<f64>]| -> Vec<(f64, f64)> {
            batch
                .iter()
                .map(|x| (x[1] * 3.0, 1.0 + x[2] * 9.0))
                .collect()
        };
        let cfg = ExplorerConfig {
            initial_samples: 64,
            refinement_rounds: 4,
            beam: 6,
            seed: 5,
        };
        let refined = explore_pareto(&space, objective, &cfg);
        let no_refine = explore_pareto(
            &space,
            objective,
            &ExplorerConfig {
                refinement_rounds: 0,
                ..cfg
            },
        );
        let best_refined = refined.iter().map(|e| e.ipc).fold(0.0, f64::max);
        let best_random = no_refine.iter().map(|e| e.ipc).fold(0.0, f64::max);
        assert!(best_refined >= best_random);
        // Front entries are mutually non-dominated.
        for a in &refined {
            for b in &refined {
                assert!(!dominates(a, b) || a.point == b.point);
            }
        }
    }

    /// FNV-1a over a front's points and objective bit patterns — drifts
    /// iff any point, ordering, or f64 bit changes.
    fn front_digest(front: &[ParetoEntry]) -> u64 {
        let mut bytes = Vec::new();
        for e in front {
            for &i in e.point.indices() {
                bytes.extend_from_slice(&(i as u64).to_le_bytes());
            }
            bytes.extend_from_slice(&e.ipc.to_bits().to_le_bytes());
            bytes.extend_from_slice(&e.power.to_bits().to_le_bytes());
        }
        metadse_nn::format::fnv1a(&bytes)
    }

    #[test]
    fn standalone_explorer_digest_is_pinned() {
        // Captured from the pre-`explore_step` implementation: the exact
        // front (point indices, objective bits, order) for this seed and
        // surrogate. The resumable-stepper refactor must not move it.
        let space = DesignSpace::new();
        let surrogate = |batch: &[Vec<f64>]| -> Vec<(f64, f64)> {
            batch
                .iter()
                .map(|x| {
                    let m: f64 = x.iter().sum::<f64>() / x.len() as f64;
                    (x[0].mul_add(2.0, m), 1.0 + x[1] * 7.0 + m)
                })
                .collect()
        };
        let front = explore_pareto(
            &space,
            surrogate,
            &ExplorerConfig {
                initial_samples: 96,
                refinement_rounds: 3,
                beam: 5,
                seed: 0xD5E,
            },
        );
        assert_eq!(
            front_digest(&front),
            6_953_765_760_016_176_055,
            "standalone explorer front drifted from the pinned digest"
        );
    }

    #[test]
    fn deltas_reconstruct_front_on_every_prefix() {
        // Satellite property: applying the per-round deltas reproduces
        // `pareto_front` computed from scratch after *every* prefix of
        // rounds, and hypervolume is monotone nondecreasing for a fixed
        // reference point.
        let space = DesignSpace::new();
        let surrogate = |x: &[f64]| -> (f64, f64) {
            let m: f64 = x.iter().sum::<f64>() / x.len() as f64;
            (x[3].mul_add(4.0, m), 1.0 + x[5] * 11.0 + m * m)
        };
        for seed in [3u64, 41, 0xBEEF] {
            let mut explorer = Explorer::new(&ExplorerConfig {
                initial_samples: 48,
                refinement_rounds: 3,
                beam: 4,
                seed,
            });
            let mut applied: Vec<ParetoEntry> = Vec::new();
            let mut prev_front: Vec<ParetoEntry> = Vec::new();
            let mut prev_hv = 0.0;
            while let Some(points) = explorer.propose(&space) {
                let entries: Vec<ParetoEntry> = points
                    .into_iter()
                    .map(|point| {
                        let (ipc, power) = surrogate(&space.encode(&point));
                        ParetoEntry { point, ipc, power }
                    })
                    .collect();
                explorer.record(entries);
                let next_front = explorer.front();
                apply_front_delta(&mut applied, &front_delta(&prev_front, &next_front));
                // Delta-applied front == front recomputed from scratch
                // over the archive prefix, bit-for-bit.
                assert_eq!(
                    canonical_front(applied.clone()),
                    canonical_front(pareto_front(explorer.archive())),
                );
                let hv = hypervolume(&next_front, 0.0, 50.0);
                assert!(hv >= prev_hv, "hypervolume regressed: {prev_hv} -> {hv}");
                prev_hv = hv;
                prev_front = next_front;
            }
            assert!(!applied.is_empty());
        }
    }

    #[test]
    fn stepper_resumes_bit_identically_from_any_round_boundary() {
        let space = DesignSpace::new();
        let surrogate = |x: &[f64]| -> (f64, f64) {
            let m: f64 = x.iter().sum::<f64>() / x.len() as f64;
            (x[0].mul_add(2.0, m), 1.0 + x[1] * 7.0 + m)
        };
        let config = ExplorerConfig {
            initial_samples: 40,
            refinement_rounds: 3,
            beam: 4,
            seed: 0xAB,
        };
        let drive = |explorer: &mut Explorer| {
            while let Some(points) = explorer.propose(&space) {
                let entries = points
                    .into_iter()
                    .map(|point| {
                        let (ipc, power) = surrogate(&space.encode(&point));
                        ParetoEntry { point, ipc, power }
                    })
                    .collect();
                explorer.record(entries);
            }
        };
        let mut straight = Explorer::new(&config);
        drive(&mut straight);
        let reference = canonical_front(straight.front());
        // Interrupt at every round boundary: snapshot, rebuild, finish.
        for stop_after in 0..=4usize {
            let mut first = Explorer::new(&config);
            for _ in 0..stop_after {
                if first.is_done() {
                    break;
                }
                let points = first.propose(&space).unwrap();
                let entries = points
                    .into_iter()
                    .map(|point| {
                        let (ipc, power) = surrogate(&space.encode(&point));
                        ParetoEntry { point, ipc, power }
                    })
                    .collect();
                first.record(entries);
            }
            let state = first.state();
            let mut resumed = Explorer::from_state(&config, &state);
            assert_eq!(resumed.rounds_done(), first.rounds_done());
            drive(&mut resumed);
            let front = canonical_front(resumed.front());
            assert_eq!(front.len(), reference.len());
            for (a, b) in front.iter().zip(&reference) {
                assert_eq!(a.point, b.point);
                assert_eq!(a.ipc.to_bits(), b.ipc.to_bits());
                assert_eq!(a.power.to_bits(), b.power.to_bits());
            }
        }
    }

    #[test]
    fn duplicate_points_are_evaluated_once() {
        let space = DesignSpace::new();
        let mut calls = 0usize;
        let counted = |batch: &[Vec<f64>]| -> Vec<(f64, f64)> {
            batch.iter().map(|x| (x[0], x[1])).collect()
        };
        // Run twice over the same RNG seed: seen-set prevents re-predicting
        // the same points within one run (indirectly observable by the
        // archive not containing duplicates).
        let front = explore_pareto(
            &space,
            |b| {
                calls += b.len();
                counted(b)
            },
            &ExplorerConfig {
                initial_samples: 32,
                refinement_rounds: 2,
                beam: 4,
                seed: 6,
            },
        );
        let mut points: Vec<&ConfigPoint> = front.iter().map(|e| &e.point).collect();
        let before = points.len();
        points.dedup();
        assert_eq!(points.len(), before);
        assert!(calls >= 32);
    }
}
