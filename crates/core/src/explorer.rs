//! Surrogate-driven design-space exploration.
//!
//! The end product of the MetaDSE pipeline: once a predictor has adapted to
//! a new workload from a handful of simulations, it can sweep millions of
//! configurations in the time one gem5 run would take. The explorer
//! combines a broad random sweep with hill-climbing refinement around the
//! current Pareto front (maximize IPC, minimize power).

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::SeedableRng;

use metadse_sim::{ConfigPoint, DesignSpace, Elem};

/// A design point with its predicted objectives.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoEntry {
    /// The design point.
    pub point: ConfigPoint,
    /// Predicted instructions per cycle (maximized).
    pub ipc: Elem,
    /// Predicted power (minimized).
    pub power: Elem,
}

/// Exploration budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExplorerConfig {
    /// Random design points evaluated in the initial sweep.
    pub initial_samples: usize,
    /// Hill-climbing rounds around the Pareto front.
    pub refinement_rounds: usize,
    /// Front entries whose neighborhoods are expanded each round.
    pub beam: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        ExplorerConfig {
            initial_samples: 512,
            refinement_rounds: 3,
            beam: 8,
            seed: 99,
        }
    }
}

/// `a` dominates `b` when it is no worse on both objectives and strictly
/// better on one.
fn dominates(a: &ParetoEntry, b: &ParetoEntry) -> bool {
    (a.ipc >= b.ipc && a.power <= b.power) && (a.ipc > b.ipc || a.power < b.power)
}

/// Dominated hypervolume of a front with respect to a reference point
/// `(ipc_ref, power_ref)` — the usual two-objective DSE quality metric
/// (IPC maximized, power minimized). Entries outside the reference box
/// contribute nothing.
///
/// # Example
///
/// ```
/// use metadse::explorer::{hypervolume, ParetoEntry};
/// use metadse_sim::ConfigPoint;
///
/// let front = vec![ParetoEntry {
///     point: ConfigPoint::new(vec![0; 21]),
///     ipc: 2.0,
///     power: 5.0,
/// }];
/// // Box between (0 IPC, 10 W) and the point: 2 IPC × 5 W.
/// assert_eq!(hypervolume(&front, 0.0, 10.0), 10.0);
/// ```
pub fn hypervolume(entries: &[ParetoEntry], ipc_ref: Elem, power_ref: Elem) -> Elem {
    // Reduce to the non-dominated set inside the reference box, sorted by
    // descending IPC; sweep accumulates disjoint rectangles.
    let mut front: Vec<&ParetoEntry> = entries
        .iter()
        .filter(|e| e.ipc > ipc_ref && e.power < power_ref)
        .collect();
    front.sort_by(|a, b| b.ipc.total_cmp(&a.ipc));
    let mut volume = 0.0;
    let mut best_power = power_ref;
    for e in front {
        if e.power < best_power {
            volume += (e.ipc - ipc_ref) * (best_power - e.power);
            best_power = e.power;
        }
    }
    volume
}

/// Extracts the non-dominated subset, sorted by descending IPC.
pub fn pareto_front(entries: &[ParetoEntry]) -> Vec<ParetoEntry> {
    let mut front: Vec<ParetoEntry> = Vec::new();
    for e in entries {
        if entries.iter().any(|other| dominates(other, e)) {
            continue;
        }
        if !front.iter().any(|f| f.point == e.point) {
            front.push(e.clone());
        }
    }
    front.sort_by(|a, b| b.ipc.total_cmp(&a.ipc));
    front
}

/// Explores the design space with a surrogate objective function.
///
/// `predict` maps a batch of encoded design points (normalized features)
/// to `(ipc, power)` predictions — typically two adapted
/// [`crate::TransformerPredictor`]s, but any surrogate fits.
///
/// # Example
///
/// ```
/// use metadse::explorer::{explore_pareto, ExplorerConfig};
/// use metadse_sim::DesignSpace;
///
/// let space = DesignSpace::new();
/// // Toy surrogate: IPC = mean feature, power = squared mean.
/// let front = explore_pareto(
///     &space,
///     |batch| {
///         batch
///             .iter()
///             .map(|x| {
///                 let m = x.iter().sum::<f64>() / x.len() as f64;
///                 (m, m * m * 4.0)
///             })
///             .collect()
///     },
///     &ExplorerConfig {
///         initial_samples: 64,
///         refinement_rounds: 1,
///         beam: 4,
///         seed: 1,
///     },
/// );
/// assert!(!front.is_empty());
/// ```
pub fn explore_pareto(
    space: &DesignSpace,
    mut predict: impl FnMut(&[Vec<Elem>]) -> Vec<(Elem, Elem)>,
    config: &ExplorerConfig,
) -> Vec<ParetoEntry> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut seen: HashSet<ConfigPoint> = HashSet::new();

    #[allow(clippy::type_complexity)] // borrows the caller's predictor closure
    let evaluate = |points: Vec<ConfigPoint>,
                    seen: &mut HashSet<ConfigPoint>,
                    predict: &mut dyn FnMut(&[Vec<Elem>]) -> Vec<(Elem, Elem)>|
     -> Vec<ParetoEntry> {
        let fresh: Vec<ConfigPoint> = points
            .into_iter()
            .filter(|p| seen.insert(p.clone()))
            .collect();
        if fresh.is_empty() {
            return Vec::new();
        }
        let encoded: Vec<Vec<Elem>> = fresh.iter().map(|p| space.encode(p)).collect();
        let objectives = predict(&encoded);
        fresh
            .into_iter()
            .zip(objectives)
            .map(|(point, (ipc, power))| ParetoEntry { point, ipc, power })
            .collect()
    };

    // Broad sweep.
    let initial: Vec<ConfigPoint> = (0..config.initial_samples)
        .map(|_| space.random_point(&mut rng))
        .collect();
    let mut archive = evaluate(initial, &mut seen, &mut predict);

    // Hill climb around the current front.
    for _ in 0..config.refinement_rounds {
        let front = pareto_front(&archive);
        let mut candidates = Vec::new();
        for entry in front.iter().take(config.beam) {
            candidates.extend(space.neighbors(&entry.point));
        }
        let fresh = evaluate(candidates, &mut seen, &mut predict);
        archive.extend(fresh);
    }
    pareto_front(&archive)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(ipc: f64, power: f64, tag: usize) -> ParetoEntry {
        ParetoEntry {
            point: ConfigPoint::new(vec![tag; 21]),
            ipc,
            power,
        }
    }

    #[test]
    fn hypervolume_of_staircase_front() {
        // Two points forming a staircase against reference (0, 10):
        // (3, 6) contributes 3×4; (1, 2) adds 1×4 more.
        let front = vec![entry(3.0, 6.0, 0), entry(1.0, 2.0, 1)];
        assert_eq!(hypervolume(&front, 0.0, 10.0), 16.0);
        // Order independence.
        let rev = vec![entry(1.0, 2.0, 1), entry(3.0, 6.0, 0)];
        assert_eq!(hypervolume(&rev, 0.0, 10.0), 16.0);
    }

    #[test]
    fn hypervolume_ignores_points_outside_reference_box() {
        let front = vec![entry(2.0, 12.0, 0), entry(-1.0, 5.0, 1)];
        assert_eq!(hypervolume(&front, 0.0, 10.0), 0.0);
        assert_eq!(hypervolume(&[], 0.0, 10.0), 0.0);
    }

    #[test]
    fn hypervolume_dominated_point_adds_nothing() {
        let base = vec![entry(3.0, 4.0, 0)];
        let with_dominated = vec![entry(3.0, 4.0, 0), entry(2.0, 6.0, 1)];
        assert_eq!(
            hypervolume(&base, 0.0, 10.0),
            hypervolume(&with_dominated, 0.0, 10.0)
        );
    }

    #[test]
    fn front_drops_dominated_points() {
        let entries = vec![
            entry(2.0, 10.0, 0),
            entry(1.0, 20.0, 1), // dominated by 0
            entry(3.0, 30.0, 2),
            entry(0.5, 5.0, 3),
        ];
        let front = pareto_front(&entries);
        let tags: Vec<usize> = front.iter().map(|e| e.point.indices()[0]).collect();
        assert!(tags.contains(&0) && tags.contains(&2) && tags.contains(&3));
        assert!(!tags.contains(&1));
    }

    #[test]
    fn front_is_sorted_by_descending_ipc() {
        let entries = vec![entry(1.0, 1.0, 0), entry(3.0, 3.0, 1), entry(2.0, 2.0, 2)];
        let front = pareto_front(&entries);
        let ipcs: Vec<f64> = front.iter().map(|e| e.ipc).collect();
        assert_eq!(ipcs, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn exploration_improves_over_pure_random_front() {
        // Objective with structure: IPC rewards feature 0, power punishes
        // feature 1 — the ideal corner is (hi, lo). Refinement should walk
        // toward it.
        let space = DesignSpace::new();
        let objective = |batch: &[Vec<f64>]| -> Vec<(f64, f64)> {
            batch
                .iter()
                .map(|x| (x[1] * 3.0, 1.0 + x[2] * 9.0))
                .collect()
        };
        let cfg = ExplorerConfig {
            initial_samples: 64,
            refinement_rounds: 4,
            beam: 6,
            seed: 5,
        };
        let refined = explore_pareto(&space, objective, &cfg);
        let no_refine = explore_pareto(
            &space,
            objective,
            &ExplorerConfig {
                refinement_rounds: 0,
                ..cfg
            },
        );
        let best_refined = refined.iter().map(|e| e.ipc).fold(0.0, f64::max);
        let best_random = no_refine.iter().map(|e| e.ipc).fold(0.0, f64::max);
        assert!(best_refined >= best_random);
        // Front entries are mutually non-dominated.
        for a in &refined {
            for b in &refined {
                assert!(!dominates(a, b) || a.point == b.point);
            }
        }
    }

    #[test]
    fn duplicate_points_are_evaluated_once() {
        let space = DesignSpace::new();
        let mut calls = 0usize;
        let counted = |batch: &[Vec<f64>]| -> Vec<(f64, f64)> {
            batch.iter().map(|x| (x[0], x[1])).collect()
        };
        // Run twice over the same RNG seed: seen-set prevents re-predicting
        // the same points within one run (indirectly observable by the
        // archive not containing duplicates).
        let front = explore_pareto(
            &space,
            |b| {
                calls += b.len();
                counted(b)
            },
            &ExplorerConfig {
                initial_samples: 32,
                refinement_rounds: 2,
                beam: 4,
                seed: 6,
            },
        );
        let mut points: Vec<&ConfigPoint> = front.iter().map(|e| &e.point).collect();
        let before = points.len();
        points.dedup();
        assert_eq!(points.len(), before);
        assert!(calls >= 32);
    }
}
