//! Per-task evaluation bookkeeping (the paper's "mean and confidence
//! intervals over 1000 tasks per workload").

use metadse_mlkit::metrics::{explained_variance, mape, mean_with_ci95, rmse};
use metadse_nn::Elem;

/// Accumulates per-task metric values for one (model, workload) cell.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TaskScores {
    rmse: Vec<Elem>,
    mape: Vec<Elem>,
    ev: Vec<Elem>,
}

impl TaskScores {
    /// Creates an empty accumulator.
    pub fn new() -> TaskScores {
        TaskScores::default()
    }

    /// Scores one task's query predictions.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or have fewer than two
    /// points.
    pub fn push(&mut self, actual: &[Elem], predicted: &[Elem]) {
        self.rmse.push(rmse(actual, predicted));
        self.mape.push(mape(actual, predicted));
        self.ev.push(explained_variance(actual, predicted));
    }

    /// Number of scored tasks.
    pub fn len(&self) -> usize {
        self.rmse.len()
    }

    /// Whether no task has been scored yet.
    pub fn is_empty(&self) -> bool {
        self.rmse.is_empty()
    }

    /// Summary with 95% confidence half-widths.
    ///
    /// # Panics
    ///
    /// Panics if no task has been scored.
    pub fn summary(&self) -> EvalSummary {
        assert!(!self.is_empty(), "no tasks scored");
        let (rmse_mean, rmse_ci) = mean_with_ci95(&self.rmse);
        let (mape_mean, mape_ci) = mean_with_ci95(&self.mape);
        let (ev_mean, ev_ci) = mean_with_ci95(&self.ev);
        EvalSummary {
            rmse_mean,
            rmse_ci,
            mape_mean,
            mape_ci,
            ev_mean,
            ev_ci,
            tasks: self.len(),
        }
    }

    /// Merges another accumulator into this one (pooling tasks across
    /// workloads, as Table II averages across the five test datasets).
    pub fn merge(&mut self, other: &TaskScores) {
        self.rmse.extend_from_slice(&other.rmse);
        self.mape.extend_from_slice(&other.mape);
        self.ev.extend_from_slice(&other.ev);
    }

    /// Raw per-task RMSE values.
    pub fn rmse_values(&self) -> &[Elem] {
        &self.rmse
    }
}

/// Mean ± 95% CI of the three paper metrics over tasks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalSummary {
    /// Mean RMSE.
    pub rmse_mean: Elem,
    /// RMSE 95% confidence half-width.
    pub rmse_ci: Elem,
    /// Mean MAPE (fraction, not percent).
    pub mape_mean: Elem,
    /// MAPE 95% confidence half-width.
    pub mape_ci: Elem,
    /// Mean explained variance.
    pub ev_mean: Elem,
    /// EV 95% confidence half-width.
    pub ev_ci: Elem,
    /// Number of tasks aggregated.
    pub tasks: usize,
}

impl std::fmt::Display for EvalSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RMSE {:.4}±{:.4}  MAPE {:.4}±{:.4}  EV {:.4}±{:.4} ({} tasks)",
            self.rmse_mean,
            self.rmse_ci,
            self.mape_mean,
            self.mape_ci,
            self.ev_mean,
            self.ev_ci,
            self.tasks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_summarize_cleanly() {
        let mut s = TaskScores::new();
        s.push(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]);
        s.push(&[2.0, 4.0, 8.0], &[2.0, 4.0, 8.0]);
        let sum = s.summary();
        assert_eq!(sum.rmse_mean, 0.0);
        assert_eq!(sum.mape_mean, 0.0);
        assert_eq!(sum.ev_mean, 1.0);
        assert_eq!(sum.tasks, 2);
    }

    #[test]
    fn merge_pools_tasks() {
        let mut a = TaskScores::new();
        a.push(&[1.0, 2.0], &[1.0, 2.0]);
        let mut b = TaskScores::new();
        b.push(&[1.0, 2.0], &[2.0, 1.0]);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert!(a.summary().rmse_mean > 0.0);
    }

    #[test]
    #[should_panic(expected = "no tasks scored")]
    fn empty_summary_panics() {
        TaskScores::new().summary();
    }

    #[test]
    fn display_is_nonempty() {
        let mut s = TaskScores::new();
        s.push(&[1.0, 2.0], &[1.5, 2.5]);
        assert!(!format!("{}", s.summary()).is_empty());
    }
}
