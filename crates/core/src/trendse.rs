//! TrEnDSE baseline (Wang et al., ICCAD'23) and its transformer variant.
//!
//! TrEnDSE is the state-of-the-art cross-workload framework MetaDSE is
//! compared against: for a new target workload it measures the Wasserstein
//! distance between the target's few-shot label distribution and each
//! source workload's label distribution, pulls the most similar sources'
//! data into the training pool, and fits an **ensemble** surrogate on the
//! pooled data plus the target support set.
//!
//! `TrEnDseTransformer` swaps the ensemble for a transformer predictor
//! with the same data-selection strategy (the "TrEnDSE-Transformer"
//! baseline of Fig. 5), and the plain pooled RF/GBRT baselines of Table II
//! are provided by [`fit_pooled_baseline`].

use rand::rngs::StdRng;
use rand::SeedableRng;

use metadse_mlkit::wasserstein::wasserstein_1d;
use metadse_mlkit::{GradientBoosting, RandomForest, Regressor, RidgeRegression};
use metadse_nn::autograd::grad;
use metadse_nn::layers::Module;
use metadse_nn::optim::{Adam, Optimizer};
use metadse_nn::Elem;
use metadse_workloads::{Dataset, Metric};

use crate::predictor::{PredictorConfig, TransformerPredictor};

/// TrEnDSE hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrEnDseConfig {
    /// How many most-similar source workloads to pull data from.
    pub num_similar: usize,
    /// Cap on rows taken from each selected source (keeps per-task fits
    /// tractable; the paper pools entire datasets).
    pub source_cap: usize,
    /// How many times the target support set is replicated in the pool so
    /// few shots are not drowned out by source data.
    pub support_weight: usize,
    /// Seed for the ensemble members.
    pub seed: u64,
}

impl Default for TrEnDseConfig {
    fn default() -> Self {
        TrEnDseConfig {
            num_similar: 2,
            source_cap: 200,
            support_weight: 8,
            seed: 23,
        }
    }
}

/// The TrEnDSE cross-workload surrogate.
#[derive(Debug, Clone)]
pub struct TrEnDse {
    sources: Vec<Dataset>,
    metric: Metric,
    config: TrEnDseConfig,
}

impl TrEnDse {
    /// Creates the framework over the given source-workload datasets.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty.
    pub fn new(sources: Vec<Dataset>, metric: Metric, config: TrEnDseConfig) -> TrEnDse {
        assert!(!sources.is_empty(), "TrEnDSE needs source workloads");
        TrEnDse {
            sources,
            metric,
            config,
        }
    }

    /// Ranks source workloads by Wasserstein distance between their label
    /// distribution and the target support labels (ascending = most
    /// similar first). Returns `(source index, distance)`.
    pub fn rank_sources(&self, support_y: &[Elem]) -> Vec<(usize, Elem)> {
        let mut ranked: Vec<(usize, Elem)> = self
            .sources
            .iter()
            .enumerate()
            .map(|(i, ds)| (i, wasserstein_1d(support_y, &ds.labels(self.metric))))
            .collect();
        ranked.sort_by(|a, b| a.1.total_cmp(&b.1));
        ranked
    }

    /// Builds the pooled training set for one target task.
    fn pooled(&self, support_x: &[Vec<Elem>], support_y: &[Elem]) -> (Vec<Vec<Elem>>, Vec<Elem>) {
        let ranked = self.rank_sources(support_y);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for &(idx, _) in ranked.iter().take(self.config.num_similar) {
            let ds = &self.sources[idx];
            for s in ds.samples().iter().take(self.config.source_cap) {
                x.push(s.features.clone());
                y.push(s.label(self.metric));
            }
        }
        for _ in 0..self.config.support_weight.max(1) {
            x.extend(support_x.iter().cloned());
            y.extend(support_y.iter().copied());
        }
        (x, y)
    }

    /// Adapts to a target task and predicts its query points: similarity
    /// selection → pooling → ensemble fit → average prediction.
    pub fn adapt_and_predict(
        &self,
        support_x: &[Vec<Elem>],
        support_y: &[Elem],
        query_x: &[Vec<Elem>],
    ) -> Vec<Elem> {
        let (x, y) = self.pooled(support_x, support_y);
        let mut forest = RandomForest::new(40, 10, 2, self.config.seed);
        let mut gbrt = GradientBoosting::new(80, 0.1, 3, 2);
        let mut ridge = RidgeRegression::new(1e-3);
        forest.fit(&x, &y);
        gbrt.fit(&x, &y);
        ridge.fit(&x, &y);
        query_x
            .iter()
            .map(|q| (forest.predict_one(q) + gbrt.predict_one(q) + ridge.predict_one(q)) / 3.0)
            .collect()
    }
}

/// TrEnDSE with the ensemble replaced by a transformer predictor
/// (the Fig. 5 "TrEnDSE-Transformer" baseline).
#[derive(Debug)]
pub struct TrEnDseTransformer {
    selector: TrEnDse,
    predictor_config: PredictorConfig,
    /// Supervised training epochs over the pooled data per task.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: Elem,
    /// Mini-batch size.
    pub batch: usize,
}

impl TrEnDseTransformer {
    /// Creates the variant with a given predictor geometry.
    pub fn new(
        sources: Vec<Dataset>,
        metric: Metric,
        config: TrEnDseConfig,
        predictor_config: PredictorConfig,
    ) -> TrEnDseTransformer {
        TrEnDseTransformer {
            selector: TrEnDse::new(sources, metric, config),
            predictor_config,
            epochs: 3,
            lr: 2e-3,
            batch: 32,
        }
    }

    /// Adapts to a target task and predicts its query points: similarity
    /// selection → pooling → supervised transformer fit → prediction.
    pub fn adapt_and_predict(
        &self,
        support_x: &[Vec<Elem>],
        support_y: &[Elem],
        query_x: &[Vec<Elem>],
    ) -> Vec<Elem> {
        let (x, y) = self.selector.pooled(support_x, support_y);
        let model = TransformerPredictor::new(self.predictor_config, self.selector.config.seed);
        train_supervised(
            &model,
            &x,
            &y,
            self.epochs,
            self.lr,
            self.batch,
            self.selector.config.seed,
        );
        model.predict(query_x)
    }
}

/// Plain supervised mini-batch training of a transformer predictor (used
/// by TrEnDSE-Transformer and as the non-meta pre-training ablation).
pub fn train_supervised(
    model: &TransformerPredictor,
    x: &[Vec<Elem>],
    y: &[Elem],
    epochs: usize,
    lr: Elem,
    batch: usize,
    seed: u64,
) {
    assert!(!x.is_empty(), "cannot train on empty data");
    assert_eq!(x.len(), y.len(), "feature/label length mismatch");
    let params = model.params();
    let mut optimizer = Adam::new(params.clone(), lr);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..x.len()).collect();
    for _ in 0..epochs {
        // Shuffle.
        for i in (1..order.len()).rev() {
            order.swap(i, rand::Rng::gen_range(&mut rng, 0..=i));
        }
        for chunk in order.chunks(batch.max(1)) {
            let bx: Vec<Vec<Elem>> = chunk.iter().map(|&i| x[i].clone()).collect();
            let by: Vec<Elem> = chunk.iter().map(|&i| y[i]).collect();
            let loss = model.mse_on(&bx, &by);
            let tensors: Vec<_> = params.iter().map(|p| p.get()).collect();
            let grads = grad(&loss, &tensors, false);
            optimizer.step(&grads);
        }
    }
}

/// Fits a pooled-data baseline (the Table II "RF" / "GBRT" rows): all
/// source data up to a per-source cap, plus the replicated target support
/// set, into a single regressor.
pub fn fit_pooled_baseline<M: Regressor>(
    model: &mut M,
    sources: &[Dataset],
    metric: Metric,
    support_x: &[Vec<Elem>],
    support_y: &[Elem],
    source_cap: usize,
    support_weight: usize,
) {
    let mut x = Vec::new();
    let mut y = Vec::new();
    for ds in sources {
        for s in ds.samples().iter().take(source_cap) {
            x.push(s.features.clone());
            y.push(s.label(metric));
        }
    }
    for _ in 0..support_weight.max(1) {
        x.extend(support_x.iter().cloned());
        y.extend(support_y.iter().copied());
    }
    model.fit(&x, &y);
}

#[cfg(test)]
mod tests {
    use super::*;
    use metadse_mlkit::metrics::rmse;
    use metadse_workloads::{Sample, TaskSampler};
    use rand::Rng;

    /// Source datasets with controllable label offsets: similarity
    /// selection should find the closest offset.
    fn offset_dataset(name: &str, offset: f64, n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let samples = (0..n)
            .map(|_| {
                let features: Vec<f64> = (0..4).map(|_| rng.gen_range(0.0..1.0)).collect();
                let y = features.iter().sum::<f64>() + offset;
                Sample {
                    features,
                    ipc: y,
                    power_w: y,
                }
            })
            .collect();
        Dataset::from_samples(name, samples)
    }

    #[test]
    fn similarity_ranking_finds_closest_label_distribution() {
        let sources = vec![
            offset_dataset("far", 10.0, 50, 1),
            offset_dataset("near", 0.1, 50, 2),
            offset_dataset("mid", 3.0, 50, 3),
        ];
        let t = TrEnDse::new(sources, Metric::Ipc, TrEnDseConfig::default());
        // Target labels near offset 0.
        let support_y: Vec<f64> = (0..10).map(|i| 2.0 + 0.1 * i as f64).collect();
        let ranked = t.rank_sources(&support_y);
        assert_eq!(ranked[0].0, 1, "the near source should rank first");
        assert_eq!(ranked[2].0, 0, "the far source should rank last");
        assert!(ranked[0].1 < ranked[1].1 && ranked[1].1 < ranked[2].1);
    }

    #[test]
    fn trendse_beats_support_only_mean() {
        // Target shares structure with the similar source; pooling helps.
        let sources = vec![
            offset_dataset("similar", 0.0, 150, 4),
            offset_dataset("dissimilar", 8.0, 150, 5),
        ];
        let target = offset_dataset("target", 0.05, 60, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let task = TaskSampler::new(5, 30).sample(&target, Metric::Ipc, &mut rng);

        let t = TrEnDse::new(
            sources,
            Metric::Ipc,
            TrEnDseConfig {
                num_similar: 1,
                ..TrEnDseConfig::default()
            },
        );
        let preds = t.adapt_and_predict(&task.support_x, &task.support_y, &task.query_x);
        let err = rmse(&task.query_y, &preds);

        let mean = task.support_y.iter().sum::<f64>() / task.support_y.len() as f64;
        let mean_err = rmse(&task.query_y, &vec![mean; task.query_y.len()]);
        assert!(err < 0.6 * mean_err, "TrEnDSE {err} vs mean {mean_err}");
    }

    #[test]
    fn pooled_baseline_fits_and_predicts() {
        let sources = vec![offset_dataset("s", 0.0, 80, 8)];
        let target = offset_dataset("t", 0.1, 40, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let task = TaskSampler::new(5, 20).sample(&target, Metric::Ipc, &mut rng);
        let mut rf = RandomForest::new(20, 8, 2, 1);
        fit_pooled_baseline(
            &mut rf,
            &sources,
            Metric::Ipc,
            &task.support_x,
            &task.support_y,
            100,
            4,
        );
        let preds = rf.predict(&task.query_x);
        assert!(rmse(&task.query_y, &preds) < 0.8);
    }

    #[test]
    fn supervised_training_reduces_loss() {
        let ds = offset_dataset("train", 0.0, 120, 11);
        let x: Vec<Vec<f64>> = ds.samples().iter().map(|s| s.features.clone()).collect();
        let y: Vec<f64> = ds.labels(Metric::Ipc);
        let cfg = PredictorConfig {
            num_params: 4,
            d_model: 8,
            heads: 2,
            depth: 1,
            d_hidden: 16,
            head_hidden: 8,
        };
        let model = TransformerPredictor::new(cfg, 12);
        let before = rmse(&y, &model.predict(&x));
        train_supervised(&model, &x, &y, 8, 3e-3, 16, 13);
        let after = rmse(&y, &model.predict(&x));
        assert!(after < 0.5 * before, "supervised fit {before} -> {after}");
    }
}
