//! Workload-adaptive architectural mask (paper §IV-C, Fig. 4,
//! Algorithm 2).
//!
//! WAM replaces similarity-based knowledge transfer with an *architectural*
//! prior: attention weights recorded from the last self-attention layer
//! during pre-training reveal which parameter interactions matter across
//! many workloads. High-frequency interactions are kept; the rest receive a
//! negative additive logit bias. The mask is installed as a **learnable**
//! parameter and fine-tuned together with the model during adaptation, with
//! cosine-annealed SGD (§VI-A).

use metadse_nn::autograd::{grad, no_grad};
use metadse_nn::layers::{self, Module, Param};
use metadse_nn::optim::CosineAnnealing;
use metadse_nn::{Elem, Tensor};
use metadse_obs as obs;
use metadse_parallel::ParallelConfig;
use metadse_workloads::{Dataset, Task};

use crate::maml::fan_out_tasks;
use crate::predictor::TransformerPredictor;

/// Mask-generation hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct WamConfig {
    /// How many interactions per query row count as "active" in one
    /// observation.
    pub top_k: usize,
    /// Fraction of observations in which an interaction must be active to
    /// be kept unmasked.
    pub frequency_threshold: Elem,
    /// Additive logit penalty for filtered interactions (soft mask; the
    /// adaptation stage can learn it back).
    pub penalty: Elem,
}

impl Default for WamConfig {
    fn default() -> Self {
        WamConfig {
            top_k: 6,
            frequency_threshold: 0.25,
            penalty: 2.0,
        }
    }
}

/// Accumulates attention statistics across recorded forward passes.
#[derive(Debug, Clone, PartialEq)]
pub struct AttentionStats {
    seq: usize,
    counts: Vec<Elem>,
    observations: usize,
}

impl AttentionStats {
    /// Creates empty statistics for `seq` tokens.
    pub fn new(seq: usize) -> AttentionStats {
        AttentionStats {
            seq,
            counts: vec![0.0; seq * seq],
            observations: 0,
        }
    }

    /// Records one attention tensor `[batch, heads, seq, seq]`: for every
    /// (batch, head, row), the `top_k` strongest interactions count as
    /// active (the "mask candidates" of Fig. 4).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4 with matching `seq`.
    pub fn observe(&mut self, attention: &Tensor, top_k: usize) {
        assert_eq!(attention.ndim(), 4, "attention must be [b, h, s, s]");
        let (b, h, s) = (
            attention.shape()[0],
            attention.shape()[1],
            attention.shape()[2],
        );
        assert_eq!(s, self.seq, "token count mismatch");
        assert_eq!(attention.shape()[3], s, "attention must be square");
        let data = attention.data();
        let k = top_k.min(s);
        for bh in 0..(b * h) {
            for row in 0..s {
                let base = (bh * s + row) * s;
                let row_slice = &data[base..base + s];
                // Indices of the k largest entries.
                let mut idx: Vec<usize> = (0..s).collect();
                idx.sort_by(|&i, &j| row_slice[j].total_cmp(&row_slice[i]));
                for &col in idx.iter().take(k) {
                    self.counts[row * s + col] += 1.0;
                }
            }
            self.observations += 1;
        }
    }

    /// Number of (batch × head) observations recorded.
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// Frequency matrix `[seq × seq]`: how often each interaction was among
    /// the top-k.
    pub fn frequencies(&self) -> Vec<Elem> {
        if self.observations == 0 {
            return vec![0.0; self.seq * self.seq];
        }
        self.counts
            .iter()
            .map(|c| c / self.observations as Elem)
            .collect()
    }

    /// Builds the additive mask: 0 for kept interactions (frequency at or
    /// above the threshold, and always the diagonal); filtered interactions
    /// receive a penalty graded by how far below the threshold their
    /// frequency falls (never-attended pairs get the full `-penalty`).
    pub fn build_mask(&self, config: &WamConfig) -> Tensor {
        let freq = self.frequencies();
        let s = self.seq;
        let data: Vec<Elem> = (0..s * s)
            .map(|i| {
                let (row, col) = (i / s, i % s);
                if row == col || freq[i] >= config.frequency_threshold {
                    0.0
                } else {
                    -config.penalty * (config.frequency_threshold - freq[i])
                        / config.frequency_threshold
                }
            })
            .collect();
        Tensor::from_vec(data, &[s, s])
    }
}

/// Collects attention statistics by running the pre-trained model over the
/// source datasets with recording enabled (the pre-training side of
/// Fig. 4), then builds the workload-adaptive mask as a learnable
/// parameter.
pub fn generate_mask(
    model: &TransformerPredictor,
    sources: &[Dataset],
    config: &WamConfig,
    batch_size: usize,
) -> Param {
    let _span = obs::span("wam/generate_mask");
    let seq = model.config().num_params;
    let mut stats = AttentionStats::new(seq);
    model.set_record_attention(true);
    for dataset in sources {
        for chunk in dataset.samples().chunks(batch_size.max(1)) {
            let batch: Vec<Vec<Elem>> = chunk.iter().map(|s| s.features.clone()).collect();
            no_grad(|| model.forward_batch(&batch));
            if let Some(attention) = model.last_attention() {
                stats.observe(&attention, config.top_k);
            }
        }
    }
    model.set_record_attention(false);
    obs::with(|| {
        // Shannon entropy of the normalized interaction-frequency matrix:
        // high = attention spread evenly (mask filters little signal),
        // low = a few interactions dominate (mask is highly selective).
        let freq = stats.frequencies();
        let total: Elem = freq.iter().sum();
        if total > 0.0 {
            let entropy: Elem = freq
                .iter()
                .filter(|&&f| f > 0.0)
                .map(|&f| {
                    let p = f / total;
                    -p * p.ln()
                })
                .sum();
            obs::gauge("wam/mask_entropy", entropy);
        }
        obs::counter("wam/masks_generated", 1);
    });
    let mask = stats.build_mask(config);
    Param::new(
        "wam.mask",
        Tensor::param_from_vec(mask.to_vec(), mask.shape()),
    )
}

/// Adaptation hyperparameters (Algorithm 2 + §VI-A: ten gradient steps
/// with cosine annealing).
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptConfig {
    /// Gradient steps on the target support set.
    pub steps: usize,
    /// Peak learning rate γ.
    pub lr: Elem,
    /// Anneal the rate to `lr_min` with a cosine schedule.
    pub lr_min: Elem,
    /// Learning-rate multiplier for the WAM mask itself. The mask is the
    /// *workload-adaptive* element of Algorithm 2 (`M.required_grad =
    /// True`), so it is allowed to move faster than the meta-trained
    /// weights during the few adaptation steps.
    pub mask_lr_multiplier: Elem,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            steps: 20,
            lr: 0.02,
            lr_min: 1e-3,
            mask_lr_multiplier: 4.0,
        }
    }
}

/// Fine-tunes the model (fast-weight style) on a support set with
/// cosine-annealed SGD and returns the original parameter tensors so the
/// caller can [`layers::restore`] them afterwards.
///
/// If a learnable WAM mask is installed, it is part of `model.params()` and
/// trains along with the rest — exactly Algorithm 2's
/// `M.required_grad = True`.
pub fn adapt(
    model: &TransformerPredictor,
    support_x: &[Vec<Elem>],
    support_y: &[Elem],
    config: &AdaptConfig,
) -> Vec<Tensor> {
    let _span = obs::span("wam/adapt_task");
    obs::counter("wam/adapt_steps", config.steps as u64);
    let params = model.params();
    let theta = layers::snapshot(&params);
    let schedule = CosineAnnealing::new(config.lr, config.lr_min, config.steps.max(1));
    let lr_scales: Vec<Elem> = params
        .iter()
        .map(|p| {
            if p.name() == "wam.mask" {
                config.mask_lr_multiplier
            } else {
                1.0
            }
        })
        .collect();
    let mut current = theta.clone();
    for step in 0..config.steps {
        let loss = model.mse_on(support_x, support_y);
        let grads = grad(&loss, &current, false);
        let lr = schedule.lr_at(step);
        let updated: Vec<Tensor> = current
            .iter()
            .zip(&grads)
            .zip(&lr_scales)
            .map(|((t, g), &scale)| t.sub(&g.mul_scalar(lr * scale)))
            .collect();
        layers::restore(&params, &updated);
        current = updated;
    }
    theta
}

/// Adapts on a task's support set (optionally through a WAM mask) and
/// returns predictions on its query set, restoring the model afterwards.
pub fn adapt_and_predict(
    model: &TransformerPredictor,
    task: &Task,
    mask: Option<&Param>,
    config: &AdaptConfig,
) -> Vec<Elem> {
    if let Some(mask) = mask {
        // Fresh learnable copy per task: each target task adapts its own
        // mask starting from the shared architectural prior.
        let fresh = Param::new(
            "wam.mask",
            Tensor::param_from_vec(mask.get().to_vec(), &mask.shape()),
        );
        model.install_mask(fresh);
    }
    let params = model.params();
    let theta = adapt(model, &task.support_x, &task.support_y, config);
    let predictions = model.predict(&task.query_x);
    layers::restore(&params, &theta);
    if mask.is_some() {
        model.clear_masks();
    }
    metadse_nn::tensor::pool::reclaim();
    predictions
}

/// Runs [`adapt_and_predict`] over many tasks, fanning the per-task
/// adaptation across threads.
///
/// Each task adapts independently from the same pre-trained parameters and
/// the same mask prior, so workers rebuild a thread-local predictor from a
/// plain-buffer snapshot and a fresh mask `Param` from the mask's values —
/// predictions come back in task order and are bit-identical to the serial
/// sweep (which runs inline when one thread is effective).
pub fn adapt_sweep(
    model: &TransformerPredictor,
    tasks: &[Task],
    mask: Option<&Param>,
    config: &AdaptConfig,
    parallel: &ParallelConfig,
) -> Vec<Vec<Elem>> {
    let _span = obs::span("wam/adapt_sweep");
    obs::counter("wam/adapt_tasks", tasks.len() as u64);
    let mask_buffer: Option<(Vec<Elem>, Vec<usize>)> = mask.map(|m| (m.get().to_vec(), m.shape()));
    fan_out_tasks(model, parallel, tasks.len(), |m, i| {
        // adapt_and_predict itself copies the mask into a fresh per-task
        // Param, so a worker-local reconstruction is value-identical to
        // passing the caller's mask directly.
        let local_mask = mask_buffer
            .as_ref()
            .map(|(v, s)| Param::new("wam.mask", Tensor::param_from_vec(v.clone(), s)));
        adapt_and_predict(m, &tasks[i], local_mask.as_ref(), config)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::PredictorConfig;
    use metadse_workloads::{Metric, Sample, TaskSampler};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn tiny_model(dim: usize) -> TransformerPredictor {
        TransformerPredictor::new(
            PredictorConfig {
                num_params: dim,
                d_model: 8,
                heads: 2,
                depth: 1,
                d_hidden: 16,
                head_hidden: 8,
            },
            11,
        )
    }

    fn toy_dataset(dim: usize, n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let samples = (0..n)
            .map(|_| {
                let features: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect();
                let y = features.iter().sum::<f64>() / dim as f64;
                Sample {
                    features,
                    ipc: y,
                    power_w: 10.0 * y,
                }
            })
            .collect();
        Dataset::from_samples("toy", samples)
    }

    #[test]
    fn stats_track_topk_frequencies() {
        let mut stats = AttentionStats::new(3);
        // One batch, one head: row attention concentrated on column 0.
        let attn = Tensor::from_vec(
            vec![
                0.8, 0.1, 0.1, //
                0.7, 0.2, 0.1, //
                0.9, 0.05, 0.05,
            ],
            &[1, 1, 3, 3],
        );
        stats.observe(&attn, 1);
        let freq = stats.frequencies();
        assert_eq!(stats.observations(), 1);
        assert_eq!(freq[0], 1.0); // (0,0)
        assert_eq!(freq[3], 1.0); // (1,0)
        assert_eq!(freq[6], 1.0); // (2,0)
        assert_eq!(freq[1], 0.0);
    }

    #[test]
    fn mask_keeps_diagonal_and_frequent_pairs() {
        let mut stats = AttentionStats::new(3);
        let attn = Tensor::from_vec(
            vec![
                0.8, 0.1, 0.1, //
                0.1, 0.1, 0.8, //
                0.1, 0.8, 0.1,
            ],
            &[1, 1, 3, 3],
        );
        stats.observe(&attn, 1);
        let mask = stats.build_mask(&WamConfig {
            top_k: 1,
            frequency_threshold: 0.5,
            penalty: 2.0,
        });
        let m = mask.to_vec();
        // Diagonal always kept.
        assert_eq!(m[0], 0.0);
        assert_eq!(m[4], 0.0);
        assert_eq!(m[8], 0.0);
        // (1,2) and (2,1) active -> kept; (0,1) never active -> penalized.
        assert_eq!(m[5], 0.0);
        assert_eq!(m[7], 0.0);
        assert_eq!(m[1], -2.0);
    }

    #[test]
    fn generate_mask_has_model_shape_and_is_learnable() {
        let dim = 6;
        let model = tiny_model(dim);
        let ds = vec![toy_dataset(dim, 30, 1)];
        let mask = generate_mask(&model, &ds, &WamConfig::default(), 16);
        assert_eq!(mask.shape(), vec![dim, dim]);
        assert!(mask.get().requires_grad());
        // Diagonal unmasked.
        let m = mask.get().to_vec();
        for i in 0..dim {
            assert_eq!(m[i * dim + i], 0.0);
        }
    }

    #[test]
    fn adapt_reduces_support_loss_and_restores_exactly() {
        let dim = 6;
        let model = tiny_model(dim);
        let ds = toy_dataset(dim, 60, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let task = TaskSampler::new(10, 10).sample(&ds, Metric::Ipc, &mut rng);
        let before = model.mse_on(&task.support_x, &task.support_y).value();
        let params = model.params();
        let theta = adapt(
            &model,
            &task.support_x,
            &task.support_y,
            &AdaptConfig {
                steps: 20,
                lr: 0.05,
                lr_min: 1e-4,
                mask_lr_multiplier: 1.0,
            },
        );
        let after = model.mse_on(&task.support_x, &task.support_y).value();
        assert!(after < before);
        layers::restore(&params, &theta);
        assert_eq!(
            model.mse_on(&task.support_x, &task.support_y).value(),
            before
        );
    }

    #[test]
    fn adapt_and_predict_with_mask_leaves_model_clean() {
        let dim = 6;
        let model = tiny_model(dim);
        let ds = toy_dataset(dim, 60, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let task = TaskSampler::new(5, 8).sample(&ds, Metric::Ipc, &mut rng);
        let mask = generate_mask(&model, &[ds], &WamConfig::default(), 16);

        let probe = vec![vec![0.5; dim]];
        let before = model.predict(&probe)[0];
        let preds = adapt_and_predict(&model, &task, Some(&mask), &AdaptConfig::default());
        assert_eq!(preds.len(), task.query_size());
        // Model fully restored: no mask, same parameters.
        assert_eq!(model.predict(&probe)[0], before);
        assert!(model.encoder().last_attention().mask().is_none());
    }

    #[test]
    fn adapt_sweep_matches_serial_adaptation() {
        let dim = 6;
        let model = tiny_model(dim);
        let ds = toy_dataset(dim, 60, 8);
        let mask = generate_mask(&model, std::slice::from_ref(&ds), &WamConfig::default(), 16);
        let mut rng = StdRng::seed_from_u64(9);
        let sampler = TaskSampler::new(5, 6);
        let tasks: Vec<Task> = (0..4)
            .map(|_| sampler.sample(&ds, Metric::Ipc, &mut rng))
            .collect();
        let cfg = AdaptConfig {
            steps: 4,
            ..AdaptConfig::default()
        };
        let serial: Vec<Vec<Elem>> = tasks
            .iter()
            .map(|t| adapt_and_predict(&model, t, Some(&mask), &cfg))
            .collect();
        let swept = adapt_sweep(
            &model,
            &tasks,
            Some(&mask),
            &cfg,
            // Cutoff 1 + oversubscribe: really fan these 4 tasks across
            // workers even on a single-core host.
            &ParallelConfig::with_threads(3)
                .with_serial_cutoff(1)
                .oversubscribed(),
        );
        assert_eq!(serial, swept);
    }

    #[test]
    fn masked_adaptation_trains_the_mask() {
        let dim = 6;
        let model = tiny_model(dim);
        let ds = toy_dataset(dim, 60, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let task = TaskSampler::new(10, 8).sample(&ds, Metric::Ipc, &mut rng);
        let mask = Param::new(
            "wam.mask",
            Tensor::param_from_vec(vec![0.0; dim * dim], &[dim, dim]),
        );
        model.install_mask(mask.clone());
        let params = model.params();
        // The learnable mask must be among the adapted parameters.
        assert!(params.iter().any(|p| p.name() == "wam.mask"));
        let theta = adapt(
            &model,
            &task.support_x,
            &task.support_y,
            &AdaptConfig {
                steps: 10,
                lr: 0.05,
                lr_min: 1e-3,
                mask_lr_multiplier: 1.0,
            },
        );
        // After adaptation the installed mask tensor differs from zero.
        let mask_now = model.encoder().last_attention().mask().unwrap().get();
        assert!(mask_now.to_vec().iter().any(|&v| v != 0.0));
        layers::restore(&params, &theta);
        model.clear_masks();
    }
}
