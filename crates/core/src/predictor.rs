//! Transformer-based surrogate predictor (AttentionDSE-style).
//!
//! Each of the 21 architectural parameters becomes one token: a learned
//! per-parameter identity embedding plus a learned value direction scaled
//! by the parameter's normalized value. A transformer encoder mixes the
//! tokens through self-attention — whose attention weights expose which
//! parameter *interactions* the model relies on, the signal the WAM
//! algorithm consumes — and a mean-pooled MLP head regresses the metric.

use rand::rngs::StdRng;
use rand::SeedableRng;

use metadse_nn::autograd::no_grad;
use metadse_nn::layers::{Embedding, Mlp, Module, Param, TransformerEncoder};
use metadse_nn::{Elem, Tensor};

/// Geometry of the surrogate predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorConfig {
    /// Number of tokens (architectural parameters). 21 for Table I.
    pub num_params: usize,
    /// Embedding width.
    pub d_model: usize,
    /// Attention heads.
    pub heads: usize,
    /// Encoder layers.
    pub depth: usize,
    /// FFN hidden width.
    pub d_hidden: usize,
    /// Hidden width of the regression head.
    pub head_hidden: usize,
}

impl Default for PredictorConfig {
    /// A compact geometry that trains in seconds on one CPU core while
    /// retaining the architecture of the paper's predictor.
    fn default() -> Self {
        PredictorConfig {
            num_params: 21,
            d_model: 32,
            heads: 4,
            depth: 2,
            d_hidden: 64,
            head_hidden: 32,
        }
    }
}

/// The transformer surrogate model `f_θ` of the paper.
///
/// # Example
///
/// ```
/// use metadse::predictor::{PredictorConfig, TransformerPredictor};
///
/// let model = TransformerPredictor::new(PredictorConfig::default(), 7);
/// let x = vec![vec![0.5; 21], vec![0.1; 21]];
/// let out = model.predict(&x);
/// assert_eq!(out.len(), 2);
/// ```
#[derive(Debug)]
pub struct TransformerPredictor {
    config: PredictorConfig,
    token_embedding: Embedding,
    value_direction: Param,
    encoder: TransformerEncoder,
    head: Mlp,
}

impl TransformerPredictor {
    /// Creates a predictor with seeded initialization.
    pub fn new(config: PredictorConfig, seed: u64) -> TransformerPredictor {
        let mut rng = StdRng::seed_from_u64(seed);
        let token_embedding = Embedding::new(
            "predictor.token",
            config.num_params,
            config.d_model,
            &mut rng,
        );
        let dir = metadse_nn::init::normal(&[config.num_params, config.d_model], 0.5, &mut rng);
        let value_direction = Param::new(
            "predictor.value_direction",
            Tensor::param_from_vec(dir.to_vec(), &[config.num_params, config.d_model]),
        );
        let encoder = TransformerEncoder::new(
            "predictor.encoder",
            config.depth,
            config.d_model,
            config.heads,
            config.d_hidden,
            &mut rng,
        );
        let head = Mlp::new(
            "predictor.head",
            &[config.d_model, config.head_hidden, 1],
            &mut rng,
        );
        TransformerPredictor {
            config,
            token_embedding,
            value_direction,
            encoder,
            head,
        }
    }

    /// The predictor's geometry.
    pub fn config(&self) -> &PredictorConfig {
        &self.config
    }

    /// The underlying encoder (for masking and attention inspection).
    pub fn encoder(&self) -> &TransformerEncoder {
        &self.encoder
    }

    /// Installs an additive attention mask in **every** encoder layer
    /// (Algorithm 2 equips the self-attention operator with `M`).
    pub fn install_mask(&self, mask: Param) {
        for layer in self.encoder.layers() {
            layer.attention().set_mask(mask.clone());
        }
    }

    /// Removes any installed attention masks.
    pub fn clear_masks(&self) {
        for layer in self.encoder.layers() {
            layer.attention().clear_mask();
        }
    }

    /// Enables attention recording on the last encoder layer (the layer
    /// WAM statistics are extracted from, per Fig. 4).
    pub fn set_record_attention(&self, record: bool) {
        self.encoder.last_attention().set_record_attention(record);
    }

    /// Attention probabilities of the last layer from the most recent
    /// recorded forward pass, `[batch, heads, seq, seq]`.
    pub fn last_attention(&self) -> Option<Tensor> {
        self.encoder.last_attention().last_attention()
    }

    /// Converts feature rows to the `[batch, seq]` input tensor.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is empty or any row has the wrong arity.
    pub fn batch_tensor(&self, batch: &[Vec<Elem>]) -> Tensor {
        assert!(!batch.is_empty(), "empty batch");
        let seq = self.config.num_params;
        let mut data = Vec::with_capacity(batch.len() * seq);
        for row in batch {
            assert_eq!(row.len(), seq, "feature row must have {seq} entries");
            data.extend_from_slice(row);
        }
        Tensor::from_vec(data, &[batch.len(), seq])
    }

    /// Differentiable forward pass: `[batch, seq]` values → `[batch]`
    /// predictions.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.ndim(), 2, "input must be [batch, seq]");
        let (batch, seq) = (x.shape()[0], x.shape()[1]);
        assert_eq!(seq, self.config.num_params, "token count mismatch");

        // Identity embeddings, shared across the batch.
        let ids: Vec<usize> = (0..seq).collect();
        let identity = self
            .token_embedding
            .forward(&ids)
            .reshape(&[1, seq, self.config.d_model])
            .broadcast_to(&[batch, seq, self.config.d_model]);
        // Value component: x[b, t] scales the parameter's value direction.
        let values = x.reshape(&[batch, seq, 1]).mul(&self.value_direction.get());
        let tokens = identity.add(&values);

        let encoded = self.encoder.forward(&tokens);
        let pooled = encoded.mean_axis(1, false); // [batch, d_model]
        self.head.forward(&pooled).reshape(&[batch])
    }

    /// Convenience forward from raw feature rows.
    pub fn forward_batch(&self, batch: &[Vec<Elem>]) -> Tensor {
        self.forward(&self.batch_tensor(batch))
    }

    /// Inference without graph construction.
    pub fn predict(&self, batch: &[Vec<Elem>]) -> Vec<Elem> {
        no_grad(|| self.forward_batch(batch)).to_vec()
    }

    /// Captures every parameter's values as plain `Vec<Elem>` buffers (in
    /// [`Module::params`] order). Unlike the `Rc`-backed tensors, the
    /// buffers are `Send`, so worker threads can rebuild an identical
    /// predictor from them via [`TransformerPredictor::load_values`].
    pub fn snapshot_values(&self) -> Vec<Vec<Elem>> {
        self.params().iter().map(|p| p.get().to_vec()).collect()
    }

    /// Loads parameter values captured by
    /// [`TransformerPredictor::snapshot_values`] into this predictor's
    /// parameter slots (as fresh trainable leaves).
    ///
    /// # Panics
    ///
    /// Panics if the buffer count or any buffer length disagrees with this
    /// predictor's parameters.
    pub fn load_values(&self, values: &[Vec<Elem>]) {
        let params = self.params();
        assert_eq!(params.len(), values.len(), "parameter count mismatch");
        for (p, v) in params.iter().zip(values) {
            p.set(Tensor::param_from_vec(v.clone(), &p.shape()));
        }
    }

    /// Mean-squared-error loss on a labeled batch (differentiable).
    pub fn mse_on(&self, x: &[Vec<Elem>], y: &[Elem]) -> Tensor {
        assert_eq!(x.len(), y.len(), "feature/label length mismatch");
        let pred = self.forward_batch(x);
        let target = Tensor::from_vec(y.to_vec(), &[y.len()]);
        metadse_nn::loss::mse(&pred, &target)
    }
}

impl Module for TransformerPredictor {
    fn params(&self) -> Vec<Param> {
        let mut ps = self.token_embedding.params();
        ps.push(self.value_direction.clone());
        ps.extend(self.encoder.params());
        ps.extend(self.head.params());
        // A WAM mask installed via install_mask is shared by every encoder
        // layer and would otherwise be listed once per layer; keep the
        // first occurrence of each name.
        let mut seen = std::collections::HashSet::new();
        ps.retain(|p| seen.insert(p.name().to_string()));
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metadse_nn::autograd::grad;

    fn small() -> TransformerPredictor {
        TransformerPredictor::new(
            PredictorConfig {
                num_params: 6,
                d_model: 8,
                heads: 2,
                depth: 1,
                d_hidden: 16,
                head_hidden: 8,
            },
            3,
        )
    }

    #[test]
    fn forward_shapes() {
        let m = small();
        let x = vec![vec![0.2; 6]; 4];
        let out = m.forward_batch(&x);
        assert_eq!(out.shape(), &[4]);
        assert_eq!(m.predict(&x).len(), 4);
    }

    #[test]
    fn default_config_matches_design_space() {
        let m = TransformerPredictor::new(PredictorConfig::default(), 0);
        assert_eq!(m.config().num_params, 21);
        let out = m.predict(&[vec![0.0; 21]]);
        assert_eq!(out.len(), 1);
        assert!(out[0].is_finite());
    }

    #[test]
    fn predictions_depend_on_inputs() {
        let m = small();
        let a = m.predict(&[vec![0.0; 6]])[0];
        let b = m.predict(&[vec![1.0; 6]])[0];
        assert!((a - b).abs() > 1e-9);
    }

    #[test]
    fn construction_is_seed_deterministic() {
        let a = small().predict(&[vec![0.3; 6]])[0];
        let b = small().predict(&[vec![0.3; 6]])[0];
        assert_eq!(a, b);
    }

    #[test]
    fn every_param_receives_gradient_from_mse() {
        let m = small();
        let x = vec![vec![0.1; 6], vec![0.9; 6]];
        let y = vec![1.0, 2.0];
        let loss = m.mse_on(&x, &y);
        let tensors: Vec<_> = m.params().iter().map(|p| p.get()).collect();
        let grads = grad(&loss, &tensors, false);
        for (p, g) in m.params().iter().zip(&grads) {
            assert!(
                g.to_vec().iter().any(|&v| v != 0.0),
                "parameter {} got zero gradient",
                p.name()
            );
        }
    }

    #[test]
    fn snapshot_values_rebuild_an_identical_predictor() {
        let original = small();
        // A differently seeded predictor becomes bit-identical after
        // loading the snapshot — the mechanism parallel MAML workers use.
        let rebuilt = TransformerPredictor::new(*original.config(), 999);
        let x = vec![vec![0.25; 6], vec![0.75; 6]];
        assert_ne!(original.predict(&x), rebuilt.predict(&x));
        rebuilt.load_values(&original.snapshot_values());
        assert_eq!(original.predict(&x), rebuilt.predict(&x));
        // Loaded values are fresh trainable leaves.
        for p in rebuilt.params() {
            assert!(p.get().requires_grad(), "{} lost requires_grad", p.name());
        }
    }

    #[test]
    fn attention_capture_roundtrip() {
        let m = small();
        m.set_record_attention(true);
        m.predict(&vec![vec![0.5; 6]; 3]);
        let a = m.last_attention().expect("attention recorded");
        assert_eq!(a.shape(), &[3, 2, 6, 6]);
    }

    #[test]
    fn strong_mask_changes_predictions() {
        let m = small();
        let x = vec![vec![0.4; 6]];
        let before = m.predict(&x)[0];
        let mut mask = vec![-1e9; 36];
        for i in 0..6 {
            mask[i * 6 + i] = 0.0;
        }
        m.install_mask(Param::new("wam", Tensor::from_vec(mask, &[6, 6])));
        let after = m.predict(&x)[0];
        assert!((before - after).abs() > 1e-9);
        m.clear_masks();
        let restored = m.predict(&x)[0];
        assert_eq!(restored, before);
    }

    #[test]
    fn can_overfit_a_tiny_task() {
        // Five-shot regression: the model must be able to memorize a
        // support set with plain gradient descent (the MAML inner loop).
        let m = small();
        let x: Vec<Vec<f64>> = (0..5)
            .map(|i| (0..6).map(|j| ((i * 6 + j) as f64 * 0.13) % 1.0).collect())
            .collect();
        let y = vec![0.5, 1.0, 1.5, 2.0, 2.5];
        let params = m.params();
        let mut last = f64::INFINITY;
        for _ in 0..300 {
            let loss = m.mse_on(&x, &y);
            last = loss.value();
            let tensors: Vec<_> = params.iter().map(|p| p.get()).collect();
            let grads = grad(&loss, &tensors, false);
            for (t, g) in tensors.iter().zip(&grads) {
                t.sub_assign_scaled(g, 0.02);
            }
        }
        assert!(last < 0.05, "support loss {last} did not shrink");
    }
}
