//! Crash-safe checkpoint/resume for the meta-training pipeline.
//!
//! An interrupted [`crate::maml::pretrain`] run used to lose everything;
//! this module captures the *complete* training state — model parameters,
//! Adam first/second moments and step counter, the learning rate (the
//! schedule step resumes via the global iteration counter), the
//! meta-iteration position, partial epoch-loss accumulators, the
//! best-so-far meta-validation selection, and the `metadse-rng` stream
//! words (which *are* the task-sampler cursor: sampling is a pure
//! function of the stream) — so that a run killed at iteration *k* and
//! resumed produces results bit-identical to an uninterrupted run.
//!
//! # On-disk layout
//!
//! A checkpoint directory holds numbered *generations*:
//!
//! ```text
//! <dir>/gen-00000001.ckpt
//! <dir>/gen-00000002.ckpt        ← latest wins; corrupt ⇒ fall back
//! <dir>/.gen-00000003.ckpt.tmp-… ← in-flight write (ignored by loads)
//! ```
//!
//! Each file is a sealed container ([`metadse_nn::format::seal`]:
//! magic, version, payload length, FNV-1a checksum over header and
//! payload), written atomically: temp file in the same directory →
//! chunked writes → fsync → rename. A crash at any instant leaves either
//! nothing, an ignorable temp file, or a complete generation. Loading
//! walks generations newest-first and silently falls back past any
//! corrupt (torn, truncated, bit-flipped) file; [`Checkpointer::save`]
//! keeps the last [`CheckpointConfig::keep`] generations so a fallback
//! target always exists.
//!
//! # Fault injection
//!
//! All file operations go through the [`CkptIo`] shim. The default
//! [`StdIo`] passes straight through; [`FaultSpec`] (plain data, so it
//! can ride inside a config) installs a [`FaultIo`] that fails, torn-
//! writes, or dies at the Nth operation — the harness in
//! `crates/bench/src/bin/crashsafe.rs` and the tests in
//! `crates/core/tests/checkpoint.rs` drive every failure mode through
//! the real write path.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use metadse_nn::format::{seal, unseal, ByteReader, ByteWriter};
use metadse_nn::optim::AdamState;
use metadse_nn::serialize::{adam_state_from_bytes, adam_state_to_bytes, CheckpointError};
use metadse_obs as obs;
use metadse_obs::report;

const MAGIC: &[u8; 8] = b"MDSECKPT";
const VERSION: u32 = 1;
/// Write granularity through the IO shim; small enough that even tiny
/// test checkpoints span several operations, so faults can land mid-file.
const CHUNK: usize = 4096;

/// Where, how often, and how durably training state is checkpointed.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointConfig {
    /// Directory holding the generation files (created on first save).
    pub dir: PathBuf,
    /// Meta-iterations between checkpoints (an epoch-end checkpoint is
    /// always written in addition). `0` disables interval saves.
    pub interval: usize,
    /// Generations to retain; older ones are pruned after each save.
    /// Clamped to at least 2 so a corrupt latest always has a fallback.
    pub keep: usize,
    /// Fault-injection kill switch for the crash harness: training
    /// returns (with a partial report and **without** a final
    /// checkpoint, exactly like a kill) once this many meta-iterations
    /// have run. `None` in normal operation.
    pub halt_after: Option<u64>,
    /// Injected IO fault for the crash harness. `None` in normal
    /// operation.
    pub fault: Option<FaultSpec>,
}

impl CheckpointConfig {
    /// Checkpointing into `dir` with the default cadence (every 25
    /// meta-iterations, keep 3 generations, no faults).
    pub fn new(dir: impl Into<PathBuf>) -> CheckpointConfig {
        CheckpointConfig {
            dir: dir.into(),
            interval: 25,
            keep: 3,
            halt_after: None,
            fault: None,
        }
    }

    /// Reads the environment: `METADSE_CKPT=<dir>` enables
    /// checkpointing, `METADSE_CKPT_INTERVAL` / `METADSE_CKPT_KEEP`
    /// override the cadence and retention.
    pub fn from_env() -> Option<CheckpointConfig> {
        let dir = std::env::var("METADSE_CKPT")
            .ok()
            .filter(|d| !d.is_empty())?;
        let mut config = CheckpointConfig::new(dir);
        if let Some(interval) = std::env::var("METADSE_CKPT_INTERVAL")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            config.interval = interval;
        }
        if let Some(keep) = std::env::var("METADSE_CKPT_KEEP")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            config.keep = keep;
        }
        Some(config)
    }
}

/// What an injected fault does when it triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// The Nth operation returns a disk-full-style error once; later
    /// operations succeed.
    WriteError,
    /// The Nth write persists only half its bytes but reports success —
    /// the torn file is completed and renamed, so only the checksum can
    /// catch it.
    TornWrite,
    /// The Nth and every later operation fail — the process "died"
    /// mid-write, leaving whatever partial temp file was on disk.
    CrashMidWrite,
}

/// A fault to inject at the `fail_at`-th IO operation (0-based, counted
/// across the owning [`Checkpointer`]'s whole life).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Operation index at which the fault triggers.
    pub fail_at: u64,
    /// Failure behavior.
    pub mode: FaultMode,
}

/// The file operations a [`Checkpointer`] performs, factored out so
/// faults can be injected at operation granularity.
pub trait CkptIo: Send + Sync {
    /// Creates (truncating) a file.
    fn create(&self, path: &Path) -> io::Result<File>;
    /// Appends one chunk to an open file.
    fn write_chunk(&self, file: &mut File, chunk: &[u8]) -> io::Result<()>;
    /// Flushes file contents to stable storage.
    fn sync(&self, file: &mut File) -> io::Result<()>;
    /// Atomically renames `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove(&self, path: &Path) -> io::Result<()>;
}

/// Pass-through [`CkptIo`] used in normal operation.
#[derive(Debug, Default)]
pub struct StdIo;

impl CkptIo for StdIo {
    fn create(&self, path: &Path) -> io::Result<File> {
        File::create(path)
    }

    fn write_chunk(&self, file: &mut File, chunk: &[u8]) -> io::Result<()> {
        file.write_all(chunk)
    }

    fn sync(&self, file: &mut File) -> io::Result<()> {
        file.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }
}

/// [`CkptIo`] wrapper that injects the failure described by a
/// [`FaultSpec`], counting every operation.
#[derive(Debug)]
pub struct FaultIo {
    spec: FaultSpec,
    ops: AtomicU64,
}

impl FaultIo {
    /// A fault injector over the standard IO operations.
    pub fn new(spec: FaultSpec) -> FaultIo {
        FaultIo {
            spec,
            ops: AtomicU64::new(0),
        }
    }

    /// Counts one operation and reports whether the fault triggers on it.
    fn trips(&self) -> bool {
        let op = self.ops.fetch_add(1, Ordering::SeqCst);
        match self.spec.mode {
            FaultMode::CrashMidWrite => op >= self.spec.fail_at,
            FaultMode::WriteError | FaultMode::TornWrite => op == self.spec.fail_at,
        }
    }

    fn injected(&self) -> io::Error {
        io::Error::other(format!("injected fault at operation {}", self.spec.fail_at))
    }
}

impl CkptIo for FaultIo {
    fn create(&self, path: &Path) -> io::Result<File> {
        if self.trips() && self.spec.mode != FaultMode::TornWrite {
            return Err(self.injected());
        }
        File::create(path)
    }

    fn write_chunk(&self, file: &mut File, chunk: &[u8]) -> io::Result<()> {
        if self.trips() {
            return match self.spec.mode {
                // Half the chunk reaches the disk; success is reported
                // anyway, as a cut power line would have it.
                FaultMode::TornWrite => file.write_all(&chunk[..chunk.len() / 2]),
                FaultMode::WriteError | FaultMode::CrashMidWrite => Err(self.injected()),
            };
        }
        file.write_all(chunk)
    }

    fn sync(&self, file: &mut File) -> io::Result<()> {
        if self.trips() && self.spec.mode != FaultMode::TornWrite {
            return Err(self.injected());
        }
        file.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if self.trips() && self.spec.mode != FaultMode::TornWrite {
            return Err(self.injected());
        }
        fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        if self.trips() && self.spec.mode != FaultMode::TornWrite {
            return Err(self.injected());
        }
        fs::remove_file(path)
    }
}

/// Complete training state at a meta-iteration boundary. Every `f64` is
/// persisted as its exact bit pattern, so a resumed run continues on the
/// same floating-point trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainState {
    /// Hash of the training configuration and parameter geometry; resume
    /// refuses state written under a different configuration.
    pub fingerprint: u64,
    /// Epoch to resume in.
    pub epoch: u64,
    /// Meta-iteration within the epoch to resume at.
    pub iter: u64,
    /// Total optimizer steps taken — also the schedule step for any
    /// learning-rate schedule layered on the outer loop.
    pub global_iter: u64,
    /// The `metadse-rng` stream words (the task-sampler cursor).
    pub rng: [u64; 4],
    /// Partial sum of query losses in the current epoch.
    pub epoch_loss: f64,
    /// Tasks accumulated into `epoch_loss`.
    pub epoch_count: u64,
    /// Completed epochs' mean training losses.
    pub train_losses: Vec<f64>,
    /// Completed epochs' meta-validation losses.
    pub val_losses: Vec<f64>,
    /// Epoch of the best meta-validation loss so far.
    pub best_epoch: u64,
    /// Best meta-validation loss so far.
    pub best_val_loss: f64,
    /// Current outer-loop learning rate.
    pub lr: f64,
    /// Current model parameter values, in `Module::params` order.
    pub params: Vec<Vec<f64>>,
    /// Parameter values of the best epoch (meta-validation selection).
    pub best_params: Vec<Vec<f64>>,
    /// Adam step counter and moment buffers.
    pub adam: AdamState,
}

fn encode(state: &TrainState) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(state.fingerprint);
    w.u64(state.epoch);
    w.u64(state.iter);
    w.u64(state.global_iter);
    for word in state.rng {
        w.u64(word);
    }
    w.f64(state.epoch_loss);
    w.u64(state.epoch_count);
    w.f64_slice(&state.train_losses);
    w.f64_slice(&state.val_losses);
    w.u64(state.best_epoch);
    w.f64(state.best_val_loss);
    w.f64(state.lr);
    w.f64_slices(&state.params);
    w.f64_slices(&state.best_params);
    let adam = adam_state_to_bytes(&state.adam);
    w.u64(adam.len() as u64);
    w.bytes(&adam);
    seal(MAGIC, VERSION, &w.into_bytes())
}

fn decode(bytes: &[u8]) -> Result<TrainState, CheckpointError> {
    let (version, payload) = unseal(MAGIC, bytes)?;
    if version != VERSION {
        return Err(CheckpointError::Format(format!(
            "unsupported checkpoint version {version}"
        )));
    }
    let mut r = ByteReader::new(payload);
    let fingerprint = r.u64()?;
    let epoch = r.u64()?;
    let iter = r.u64()?;
    let global_iter = r.u64()?;
    let mut rng = [0u64; 4];
    for word in &mut rng {
        *word = r.u64()?;
    }
    let epoch_loss = r.f64()?;
    let epoch_count = r.u64()?;
    let train_losses = r.f64_vec()?;
    let val_losses = r.f64_vec()?;
    let best_epoch = r.u64()?;
    let best_val_loss = r.f64()?;
    let lr = r.f64()?;
    let params = r.f64_vecs()?;
    let best_params = r.f64_vecs()?;
    let adam_len = r.u64()? as usize;
    let adam = adam_state_from_bytes(r.take(adam_len).map_err(CheckpointError::from)?)?;
    if r.remaining() != 0 {
        return Err(CheckpointError::Format(format!(
            "{} trailing bytes after train state",
            r.remaining()
        )));
    }
    Ok(TrainState {
        fingerprint,
        epoch,
        iter,
        global_iter,
        rng,
        epoch_loss,
        epoch_count,
        train_losses,
        val_losses,
        best_epoch,
        best_val_loss,
        lr,
        params,
        best_params,
        adam,
    })
}

fn generation_file_name(generation: u64) -> String {
    format!("gen-{generation:08}.ckpt")
}

/// Parses `gen-XXXXXXXX.ckpt`, rejecting temp files and strangers.
fn parse_generation(name: &str) -> Option<u64> {
    name.strip_prefix("gen-")?
        .strip_suffix(".ckpt")?
        .parse()
        .ok()
}

/// Generation files under `dir`, sorted oldest → newest. A missing
/// directory is an empty list, not an error.
fn scan_generations(dir: &Path) -> Vec<(u64, PathBuf)> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut generations: Vec<(u64, PathBuf)> = entries
        .filter_map(|e| {
            let e = e.ok()?;
            let generation = parse_generation(e.file_name().to_str()?)?;
            Some((generation, e.path()))
        })
        .collect();
    generations.sort_unstable_by_key(|(g, _)| *g);
    generations
}

/// Writes and reads generation-rotated, checksummed training
/// checkpoints in one directory.
pub struct Checkpointer {
    config: CheckpointConfig,
    io: Arc<dyn CkptIo>,
    /// Next generation number to write; 0 = not yet determined (scan on
    /// first use).
    next_generation: u64,
}

impl std::fmt::Debug for Checkpointer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Checkpointer")
            .field("config", &self.config)
            .field("next_generation", &self.next_generation)
            .finish()
    }
}

impl Checkpointer {
    /// A checkpointer over `config`, with fault injection installed when
    /// `config.fault` is set.
    pub fn new(config: CheckpointConfig) -> Checkpointer {
        let io: Arc<dyn CkptIo> = match config.fault {
            Some(spec) => Arc::new(FaultIo::new(spec)),
            None => Arc::new(StdIo),
        };
        Checkpointer {
            config,
            io,
            next_generation: 0,
        }
    }

    /// A checkpointer with a caller-supplied IO shim.
    pub fn with_io(config: CheckpointConfig, io: Arc<dyn CkptIo>) -> Checkpointer {
        Checkpointer {
            config,
            io,
            next_generation: 0,
        }
    }

    /// The configuration this checkpointer was built with.
    pub fn config(&self) -> &CheckpointConfig {
        &self.config
    }

    fn ensure_generation_cursor(&mut self) {
        if self.next_generation == 0 {
            self.next_generation = scan_generations(&self.config.dir)
                .last()
                .map_or(1, |(g, _)| g + 1);
        }
    }

    /// Writes `state` as the next generation: temp file → chunked writes
    /// → fsync → rename, then prunes generations beyond
    /// [`CheckpointConfig::keep`]. Returns the generation number.
    ///
    /// # Errors
    ///
    /// Any IO failure (including injected faults). The temp file is
    /// removed on a best-effort basis and the target directory never
    /// holds a partially written generation file.
    pub fn save(&mut self, state: &TrainState) -> Result<u64, CheckpointError> {
        self.save_bytes(&encode(state))
    }

    /// Writes an already-sealed payload as the next generation through
    /// the same atomic temp → chunk → fsync → rename → prune path as
    /// [`save`](Checkpointer::save). Callers own the seal (magic,
    /// version, checksum); pairing with
    /// [`load_latest_with`](Checkpointer::load_latest_with) keeps the
    /// corrupt-fallback guarantee for any payload type.
    ///
    /// # Errors
    ///
    /// Any IO failure (including injected faults), as for
    /// [`save`](Checkpointer::save).
    pub fn save_bytes(&mut self, bytes: &[u8]) -> Result<u64, CheckpointError> {
        let _span = obs::span("ckpt/save");
        let started = Instant::now();
        fs::create_dir_all(&self.config.dir)?;
        self.ensure_generation_cursor();
        let generation = self.next_generation;
        let final_path = self.config.dir.join(generation_file_name(generation));
        let tmp_path = self.config.dir.join(format!(
            ".{}.tmp-{}",
            generation_file_name(generation),
            std::process::id()
        ));

        let outcome = (|| -> io::Result<()> {
            let mut file = self.io.create(&tmp_path)?;
            for chunk in bytes.chunks(CHUNK) {
                self.io.write_chunk(&mut file, chunk)?;
            }
            self.io.sync(&mut file)?;
            drop(file);
            self.io.rename(&tmp_path, &final_path)
        })();
        if let Err(e) = outcome {
            // Best effort — a genuinely dead process would leave the temp
            // file too, and loads ignore it either way.
            let _ = self.io.remove(&tmp_path);
            return Err(e.into());
        }

        self.next_generation = generation + 1;
        let keep = self.config.keep.max(2) as u64;
        for (old, path) in scan_generations(&self.config.dir) {
            if old + keep <= generation {
                // Pruning is advisory; never fail a successful save over it.
                let _ = self.io.remove(&path);
            }
        }

        obs::histogram("ckpt/write_ms", started.elapsed().as_secs_f64() * 1e3);
        obs::gauge("ckpt/bytes", bytes.len() as f64);
        obs::gauge("ckpt/generation", generation as f64);
        Ok(generation)
    }

    /// Loads the newest readable generation, falling back past corrupt
    /// ones (each fallback is warned about and counted on
    /// `ckpt/corrupt_fallbacks`). `Ok(None)` when the directory is
    /// missing, empty, or nothing in it is readable.
    pub fn load_latest(&mut self) -> Result<Option<(TrainState, u64)>, CheckpointError> {
        self.load_latest_with(decode)
    }

    /// Loads the newest generation that `decode` accepts, with the same
    /// corrupt-fallback walk as [`load_latest`](Checkpointer::load_latest).
    /// The decoder must verify integrity (unseal a checksummed
    /// container) — a decoder that accepts torn bytes defeats the
    /// fallback.
    ///
    /// # Errors
    ///
    /// Never fails today: unreadable generations are skipped, and an
    /// empty or missing directory is `Ok(None)`.
    pub fn load_latest_with<T>(
        &mut self,
        decode: impl Fn(&[u8]) -> Result<T, CheckpointError>,
    ) -> Result<Option<(T, u64)>, CheckpointError> {
        let generations = scan_generations(&self.config.dir);
        self.next_generation = generations.last().map_or(1, |(g, _)| g + 1);
        for (generation, path) in generations.iter().rev() {
            match fs::read(path)
                .map_err(CheckpointError::from)
                .and_then(|b| decode(&b))
            {
                Ok(state) => {
                    obs::gauge("ckpt/generation", *generation as f64);
                    return Ok(Some((state, *generation)));
                }
                Err(e) => {
                    obs::counter("ckpt/corrupt_fallbacks", 1);
                    report::warn(format!(
                        "checkpoint {} unreadable ({e}); falling back to the previous generation",
                        path.display()
                    ));
                }
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state(tag: u64) -> TrainState {
        // Big enough that the sealed file spans several write chunks, so
        // op-indexed faults can land mid-file.
        let mut params: Vec<Vec<f64>> = (0..4)
            .map(|i| vec![0.25 + i as f64 + tag as f64; 600])
            .collect();
        params[0][0] = -0.0;
        params[0][1] = f64::MIN_POSITIVE / 2.0;
        TrainState {
            fingerprint: 0xfeed ^ tag,
            epoch: 1,
            iter: 4,
            global_iter: 10 + tag,
            rng: [1, 2, 3, tag + 1],
            epoch_loss: 0.125,
            epoch_count: 8,
            train_losses: vec![0.9, 0.5],
            val_losses: vec![1.1, 0.7],
            best_epoch: 1,
            best_val_loss: 0.7,
            lr: 1e-3,
            params,
            best_params: vec![vec![0.5; 3]; 3],
            adam: AdamState {
                t: 10 + tag,
                m: vec![vec![0.1; 3]; 3],
                v: vec![vec![0.2; 3]; 3],
            },
        }
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("metadse-ckpt-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn encode_decode_roundtrip_is_exact() {
        let state = sample_state(0);
        let decoded = decode(&encode(&state)).unwrap();
        // Bitwise comparison (PartialEq would reject the NaN-free state
        // anyway, but compare bits to make the contract explicit).
        assert_eq!(format!("{decoded:?}"), format!("{state:?}"));
        assert_eq!(decoded, state);
    }

    #[test]
    fn save_load_rotates_generations() {
        let dir = temp_dir("rotate");
        let mut cp = Checkpointer::new(CheckpointConfig {
            keep: 2,
            ..CheckpointConfig::new(&dir)
        });
        for tag in 0..5 {
            let generation = cp.save(&sample_state(tag)).unwrap();
            assert_eq!(generation, tag + 1);
        }
        let on_disk: Vec<u64> = scan_generations(&dir).iter().map(|(g, _)| *g).collect();
        assert_eq!(on_disk, vec![4, 5], "keep=2 retains the last two");
        let (state, generation) = cp.load_latest().unwrap().unwrap();
        assert_eq!(generation, 5);
        assert_eq!(state, sample_state(4));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_loads_as_none_and_numbers_from_one() {
        let dir = temp_dir("missing");
        let mut cp = Checkpointer::new(CheckpointConfig::new(&dir));
        assert!(cp.load_latest().unwrap().is_none());
        assert_eq!(cp.save(&sample_state(0)).unwrap(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_write_is_detected_and_falls_back() {
        let dir = temp_dir("torn");
        let mut cp = Checkpointer::new(CheckpointConfig::new(&dir));
        cp.save(&sample_state(0)).unwrap();

        // Second save through a shim that tears a mid-file write chunk.
        let mut torn = Checkpointer::with_io(
            CheckpointConfig::new(&dir),
            Arc::new(FaultIo::new(FaultSpec {
                fail_at: 3,
                mode: FaultMode::TornWrite,
            })),
        );
        torn.save(&sample_state(1)).unwrap(); // reports success — torn writes lie
        assert_eq!(scan_generations(&dir).len(), 2);

        let (state, generation) = cp.load_latest().unwrap().unwrap();
        assert_eq!(generation, 1, "corrupt latest must fall back");
        assert_eq!(state, sample_state(0));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_error_leaves_no_partial_generation() {
        let dir = temp_dir("werr");
        let mut cp = Checkpointer::new(CheckpointConfig {
            fault: Some(FaultSpec {
                fail_at: 2,
                mode: FaultMode::WriteError,
            }),
            ..CheckpointConfig::new(&dir)
        });
        assert!(cp.save(&sample_state(0)).is_err());
        assert!(scan_generations(&dir).is_empty());
        // The fault fires once; the retry (e.g. next interval) succeeds.
        cp.save(&sample_state(1)).unwrap();
        let (state, _) = cp.load_latest().unwrap().unwrap();
        assert_eq!(state, sample_state(1));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_mid_write_leaves_temp_file_that_loads_ignore() {
        let dir = temp_dir("crash");
        let mut cp = Checkpointer::new(CheckpointConfig::new(&dir));
        cp.save(&sample_state(0)).unwrap();
        let mut dying = Checkpointer::with_io(
            CheckpointConfig::new(&dir),
            Arc::new(FaultIo::new(FaultSpec {
                fail_at: 3,
                mode: FaultMode::CrashMidWrite,
            })),
        );
        assert!(dying.save(&sample_state(1)).is_err());
        // The abandoned temp file survives (cleanup "died" too) …
        let leftovers = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .count();
        assert_eq!(leftovers, 1, "crash leaves the in-flight temp file");
        // … but resume still sees only the good generation.
        let (state, generation) = cp.load_latest().unwrap().unwrap();
        assert_eq!((state, generation), (sample_state(0), 1));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_bump_is_rejected_not_misparsed() {
        let state = sample_state(0);
        let payload = match unseal(MAGIC, &encode(&state)) {
            Ok((_, p)) => p.to_vec(),
            Err(e) => panic!("{e}"),
        };
        let resealed = seal(MAGIC, VERSION + 1, &payload);
        assert!(matches!(decode(&resealed), Err(CheckpointError::Format(_))));
    }

    #[test]
    fn env_config_parses_overrides() {
        // Serialized access to the process environment is not guaranteed
        // across the suite, so exercise only the unset path here; the
        // override parsing is covered through the crashsafe harness.
        if std::env::var("METADSE_CKPT").is_err() {
            assert!(CheckpointConfig::from_env().is_none());
        }
    }
}
