//! Deterministic model-fingerprint → shard assignment for the
//! multi-process serving fabric.
//!
//! The front door routes every request by the *fingerprint* of the
//! artifact serving its workload, and each `metadse-serve` worker
//! process loads only the workloads it owns. Both sides must therefore
//! agree on the assignment with no coordination — the mapping here is a
//! pure function of `(fingerprint, shard count)`, identical in every
//! process and across restarts, so a shard that was SIGKILLed and
//! respawned picks up exactly the workload set it served before.
//!
//! Fingerprints are FNV-1a digests of the sealed artifact bytes
//! (see [`crate::servable::ServablePredictor::fingerprint`]). FNV mixes
//! well in the low bits but assignment must stay balanced for *any*
//! future fingerprint scheme, so the fingerprint passes through a
//! splitmix64 finalizer before the residue is taken.

/// Environment variable naming the shard count for fleet launchers
/// (`metadse-front`, `serve_bench --shards`, the soak harness).
pub const SHARDS_ENV: &str = "METADSE_SHARDS";

/// splitmix64 finalizer: a bijective 64-bit mix, so distinct
/// fingerprints never collide *before* the residue and every output bit
/// depends on every input bit.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The shard (in `0..count`) that owns artifacts with this fingerprint.
///
/// Deterministic, coordination-free, stable across processes and
/// restarts. `count == 0` is treated as a single shard.
#[must_use]
pub fn shard_of(fingerprint: u64, count: usize) -> usize {
    let count = count.max(1);
    (mix64(fingerprint) % count as u64) as usize
}

/// One worker's position in a shard fleet: `index` of `count`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// This worker's shard index, `0 ≤ index < count`.
    pub index: usize,
    /// Total shards in the fleet.
    pub count: usize,
}

impl ShardSpec {
    /// The degenerate single-shard fleet: one worker owns everything.
    #[must_use]
    pub fn single() -> ShardSpec {
        ShardSpec { index: 0, count: 1 }
    }

    /// A validated spec.
    ///
    /// # Errors
    ///
    /// Returns a message when `count` is zero or `index` out of range.
    pub fn new(index: usize, count: usize) -> Result<ShardSpec, String> {
        if count == 0 {
            return Err("shard count must be at least 1".to_string());
        }
        if index >= count {
            return Err(format!("shard index {index} out of range 0..{count}"));
        }
        Ok(ShardSpec { index, count })
    }

    /// Whether this shard owns artifacts with `fingerprint`.
    #[must_use]
    pub fn owns(&self, fingerprint: u64) -> bool {
        shard_of(fingerprint, self.count) == self.index
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Shard count from [`SHARDS_ENV`], when set and parseable (≥ 1).
#[must_use]
pub fn shard_count_from_env() -> Option<usize> {
    let raw = std::env::var(SHARDS_ENV).ok()?;
    let n: usize = raw.trim().parse().ok()?;
    (n >= 1).then_some(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_partitions_exactly_one_owner_per_fingerprint() {
        for count in [1usize, 2, 3, 4, 7] {
            for fp in (0u64..2_000).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)) {
                let owners: Vec<usize> = (0..count)
                    .filter(|&i| ShardSpec::new(i, count).unwrap().owns(fp))
                    .collect();
                assert_eq!(owners.len(), 1, "fingerprint {fp:#x} at count {count}");
                assert_eq!(owners[0], shard_of(fp, count));
            }
        }
    }

    #[test]
    fn assignment_is_reasonably_balanced() {
        // Sequential fingerprints (the adversarial case for a plain
        // modulus) must still spread across shards after mixing.
        for count in [2usize, 4, 8] {
            let mut buckets = vec![0usize; count];
            for fp in 0u64..8_000 {
                buckets[shard_of(fp, count)] += 1;
            }
            let expected = 8_000 / count;
            for (i, &n) in buckets.iter().enumerate() {
                assert!(
                    n > expected / 2 && n < expected * 2,
                    "shard {i}/{count} got {n} of 8000 (expected ≈{expected})"
                );
            }
        }
    }

    #[test]
    fn assignment_is_stable() {
        // Pinned values: the mapping is a cross-process protocol — a
        // change here silently strands every workload on the wrong
        // shard after a rolling restart, so drift must fail loudly.
        assert_eq!(shard_of(0, 4), shard_of(0, 4));
        assert_eq!(shard_of(0xdead_beef, 1), 0);
        let pinned: Vec<usize> = (0u64..8).map(|fp| shard_of(fp, 4)).collect();
        assert_eq!(pinned, vec![0, 1, 2, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn spec_validation_and_display() {
        assert!(ShardSpec::new(0, 0).is_err());
        assert!(ShardSpec::new(3, 3).is_err());
        let spec = ShardSpec::new(2, 4).unwrap();
        assert_eq!(spec.to_string(), "2/4");
        assert_eq!(ShardSpec::single(), ShardSpec { index: 0, count: 1 });
    }

    #[test]
    fn zero_count_degrades_to_single_shard() {
        assert_eq!(shard_of(123, 0), 0);
    }
}
