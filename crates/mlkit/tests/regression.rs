//! Regression tests for the tree-ensemble baselines: thread-count
//! determinism and golden accuracy bounds.
//!
//! The DSE baselines (random forest, gradient boosting) feed directly
//! into the paper's comparison tables, so two properties must never
//! drift: fitting is a pure function of `(data, seed)` regardless of
//! how many workers fit the trees, and accuracy on a fixed synthetic
//! dataset stays within a committed bound. The dataset is generated
//! from a fixed [`StdRng`] seed, so both checks are exactly
//! reproducible.

use metadse_mlkit::metrics::rmse;
use metadse_mlkit::{GradientBoosting, RandomForest, Regressor};
use metadse_parallel::ParallelConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Forces `n` real workers even for small fan-outs on small machines.
fn forced_threads(n: usize) -> ParallelConfig {
    ParallelConfig {
        threads: Some(n),
        serial_cutoff: Some(1),
        oversubscribe: true,
    }
}

/// One split of the fixed dataset: feature rows and labels.
type Split = (Vec<Vec<f64>>, Vec<f64>);

/// The fixed synthetic DSE-like problem: 4 features on the unit cube,
/// response mixing linear, quadratic, and interaction terms plus small
/// deterministic noise. Returns `(train, test)` splits.
fn fixed_dataset() -> (Split, Split) {
    let mut rng = StdRng::seed_from_u64(0xd5e_2026);
    let mut draw = |n: usize| {
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let f: Vec<f64> = (0..4).map(|_| rng.gen_range(0.0..1.0)).collect();
            let noise = rng.gen_range(-1.0..1.0) * 0.02;
            let label = 2.0 * f[0] + f[1] * f[1] - 0.5 * f[2] + f[0] * f[3] + noise;
            x.push(f);
            y.push(label);
        }
        (x, y)
    };
    let train = draw(240);
    let test = draw(80);
    (train, test)
}

fn assert_bit_identical(tag: &str, a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    for (i, (va, vb)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            va.to_bits(),
            vb.to_bits(),
            "{tag}: prediction {i} diverged across thread counts ({va} vs {vb})"
        );
    }
}

#[test]
fn random_forest_fit_predict_is_deterministic_across_thread_counts() {
    let ((train_x, train_y), (test_x, _)) = fixed_dataset();
    let mut reference: Option<Vec<f64>> = None;
    for threads in [1usize, 2, 4] {
        let mut rf = RandomForest::new(24, 6, 2, 9).with_parallel(forced_threads(threads));
        rf.fit(&train_x, &train_y);
        let predictions = rf.predict(&test_x);
        match &reference {
            None => reference = Some(predictions),
            Some(want) => assert_bit_identical(&format!("forest t={threads}"), want, &predictions),
        }
    }
}

#[test]
fn gradient_boosting_fit_predict_is_deterministic_across_thread_counts() {
    let ((train_x, train_y), (test_x, _)) = fixed_dataset();
    let mut reference: Option<Vec<f64>> = None;
    for threads in [1usize, 2, 4] {
        let mut gb = GradientBoosting::new(60, 0.1, 3, 2).with_parallel(forced_threads(threads));
        gb.fit(&train_x, &train_y);
        let predictions = gb.predict(&test_x);
        match &reference {
            None => reference = Some(predictions),
            Some(want) => {
                assert_bit_identical(&format!("boosting t={threads}"), want, &predictions)
            }
        }
    }
}

#[test]
fn random_forest_meets_golden_accuracy_bound() {
    let ((train_x, train_y), (test_x, test_y)) = fixed_dataset();
    let mut rf = RandomForest::new(48, 8, 2, 11);
    rf.fit(&train_x, &train_y);
    let predictions = rf.predict(&test_x);
    let mse = rmse(&test_y, &predictions).powi(2);
    // Golden bound committed from the seeded run (MSE ≈ 0.0285); a 2×
    // margin absorbs intentional hyperparameter-neutral refactors while
    // still catching real regressions in the split or bootstrap logic.
    assert!(mse < 0.06, "forest test MSE regressed to {mse}");
}

#[test]
fn gradient_boosting_meets_golden_accuracy_bound() {
    let ((train_x, train_y), (test_x, test_y)) = fixed_dataset();
    let mut gb = GradientBoosting::new(150, 0.1, 3, 2);
    gb.fit(&train_x, &train_y);
    let predictions = gb.predict(&test_x);
    let mse = rmse(&test_y, &predictions).powi(2);
    // Golden bound committed from the seeded run (MSE ≈ 0.0124).
    assert!(mse < 0.03, "boosting test MSE regressed to {mse}");
}

#[test]
fn boosting_improves_monotonically_with_more_stages_on_train() {
    // Sanity anchor for the golden bounds: more stages must fit the
    // training set at least as well — if this drifts, the bounds above
    // are failing for structural reasons, not tuning ones.
    let ((train_x, train_y), _) = fixed_dataset();
    let mut last = f64::INFINITY;
    for stages in [10usize, 40, 160] {
        let mut gb = GradientBoosting::new(stages, 0.1, 3, 2);
        gb.fit(&train_x, &train_y);
        let train_rmse = rmse(&train_y, &gb.predict(&train_x));
        assert!(
            train_rmse <= last + 1e-9,
            "train RMSE rose from {last} to {train_rmse} at {stages} stages"
        );
        last = train_rmse;
    }
}
