//! Property-based tests of the classical-ML toolkit.

use proptest::prelude::*;

use metadse_mlkit::metrics::{explained_variance, geometric_mean, mape, quantile, rmse};
use metadse_mlkit::wasserstein::wasserstein_1d;
use metadse_mlkit::{GradientBoosting, RandomForest, RegressionTree, Regressor};

fn labeled_data() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    proptest::collection::vec((0.0..1.0f64, 0.0..1.0f64, -5.0..5.0f64), 10..60).prop_map(|rows| {
        let x: Vec<Vec<f64>> = rows.iter().map(|(a, b, _)| vec![*a, *b]).collect();
        let y: Vec<f64> = rows.iter().map(|(a, b, n)| a * 3.0 + b * b + n * 0.01).collect();
        (x, y)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rmse_is_nonnegative_and_zero_iff_equal(y in proptest::collection::vec(-10.0..10.0f64, 2..30)) {
        prop_assert_eq!(rmse(&y, &y), 0.0);
        let shifted: Vec<f64> = y.iter().map(|v| v + 1.0).collect();
        prop_assert!((rmse(&y, &shifted) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rmse_is_symmetric(a in proptest::collection::vec(-10.0..10.0f64, 2..20),
                         shift in -2.0..2.0f64) {
        let b: Vec<f64> = a.iter().map(|v| v + shift).collect();
        prop_assert!((rmse(&a, &b) - rmse(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn mape_is_scale_invariant(y in proptest::collection::vec(0.5..10.0f64, 2..20),
                               c in 0.5..4.0f64) {
        let pred: Vec<f64> = y.iter().map(|v| v * 1.1).collect();
        let sy: Vec<f64> = y.iter().map(|v| v * c).collect();
        let sp: Vec<f64> = pred.iter().map(|v| v * c).collect();
        prop_assert!((mape(&y, &pred) - mape(&sy, &sp)).abs() < 1e-10);
    }

    #[test]
    fn explained_variance_at_most_one(y in proptest::collection::vec(-5.0..5.0f64, 3..20),
                                      noise in -1.0..1.0f64) {
        prop_assume!(y.iter().any(|&v| (v - y[0]).abs() > 1e-6));
        let pred: Vec<f64> = y.iter().map(|v| v + noise * 0.3).collect();
        prop_assert!(explained_variance(&y, &pred) <= 1.0 + 1e-12);
    }

    #[test]
    fn geometric_mean_between_min_and_max(y in proptest::collection::vec(0.1..10.0f64, 1..20)) {
        let g = geometric_mean(&y);
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(0.0_f64, f64::max);
        prop_assert!(g >= lo - 1e-12 && g <= hi + 1e-12);
    }

    #[test]
    fn quantiles_are_monotone(y in proptest::collection::vec(-10.0..10.0f64, 2..30),
                              a in 0.0..1.0f64, b in 0.0..1.0f64) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(quantile(&y, lo) <= quantile(&y, hi) + 1e-12);
    }

    #[test]
    fn wasserstein_identity_and_symmetry(a in proptest::collection::vec(-5.0..5.0f64, 1..20),
                                         b in proptest::collection::vec(-5.0..5.0f64, 1..20)) {
        prop_assert!(wasserstein_1d(&a, &a) < 1e-12);
        let ab = wasserstein_1d(&a, &b);
        let ba = wasserstein_1d(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!(ab >= 0.0);
    }

    #[test]
    fn wasserstein_translation_equivariance(a in proptest::collection::vec(-5.0..5.0f64, 1..15),
                                            shift in -3.0..3.0f64) {
        let b: Vec<f64> = a.iter().map(|v| v + shift).collect();
        prop_assert!((wasserstein_1d(&a, &b) - shift.abs()).abs() < 1e-9);
    }

    #[test]
    fn tree_predictions_stay_within_label_range((x, y) in labeled_data()) {
        let mut tree = RegressionTree::new(6, 1);
        tree.fit(&x, &y);
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for row in &x {
            let p = tree.predict_one(row);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn forest_predictions_stay_within_label_range((x, y) in labeled_data()) {
        let mut rf = RandomForest::new(8, 6, 1, 3);
        rf.fit(&x, &y);
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for row in x.iter().take(10) {
            let p = rf.predict_one(row);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }
    }

    #[test]
    fn gbrt_training_error_decreases_with_stages((x, y) in labeled_data()) {
        prop_assume!(y.iter().any(|&v| (v - y[0]).abs() > 1e-3));
        let mut small = GradientBoosting::new(3, 0.3, 3, 1);
        let mut large = GradientBoosting::new(40, 0.3, 3, 1);
        small.fit(&x, &y);
        large.fit(&x, &y);
        let e_small = rmse(&y, &small.predict(&x));
        let e_large = rmse(&y, &large.predict(&x));
        prop_assert!(e_large <= e_small + 1e-9, "{e_large} > {e_small}");
    }
}
