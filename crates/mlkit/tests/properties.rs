//! Property-style tests of the classical-ML toolkit.
//!
//! Each test draws many random cases from a seeded [`StdRng`] (the hermetic
//! build has no proptest), so failures are reproducible from the fixed seed.

use metadse_mlkit::metrics::{explained_variance, geometric_mean, mape, quantile, rmse};
use metadse_mlkit::wasserstein::wasserstein_1d;
use metadse_mlkit::{GradientBoosting, RandomForest, RegressionTree, Regressor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 48;

fn random_vec(rng: &mut StdRng, len: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

/// A noisy low-dimensional regression problem: y = 3a + b^2 + small noise.
fn labeled_data(rng: &mut StdRng) -> (Vec<Vec<f64>>, Vec<f64>) {
    let n = rng.gen_range(10..60usize);
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let a = rng.gen_range(0.0..1.0);
        let b = rng.gen_range(0.0..1.0);
        let noise = rng.gen_range(-5.0..5.0);
        x.push(vec![a, b]);
        y.push(a * 3.0 + b * b + noise * 0.01);
    }
    (x, y)
}

#[test]
fn rmse_is_nonnegative_and_zero_iff_equal() {
    let mut rng = StdRng::seed_from_u64(0x4d01);
    for _ in 0..CASES {
        let len = rng.gen_range(2..30usize);
        let y = random_vec(&mut rng, len, -10.0, 10.0);
        assert_eq!(rmse(&y, &y), 0.0);
        let shifted: Vec<f64> = y.iter().map(|v| v + 1.0).collect();
        assert!((rmse(&y, &shifted) - 1.0).abs() < 1e-12);
    }
}

#[test]
fn rmse_is_symmetric() {
    let mut rng = StdRng::seed_from_u64(0x4d02);
    for _ in 0..CASES {
        let len = rng.gen_range(2..20usize);
        let a = random_vec(&mut rng, len, -10.0, 10.0);
        let shift = rng.gen_range(-2.0..2.0);
        let b: Vec<f64> = a.iter().map(|v| v + shift).collect();
        assert!((rmse(&a, &b) - rmse(&b, &a)).abs() < 1e-12);
    }
}

#[test]
fn mape_is_scale_invariant() {
    let mut rng = StdRng::seed_from_u64(0x4d03);
    for _ in 0..CASES {
        let len = rng.gen_range(2..20usize);
        let y = random_vec(&mut rng, len, 0.5, 10.0);
        let c = rng.gen_range(0.5..4.0);
        let pred: Vec<f64> = y.iter().map(|v| v * 1.1).collect();
        let sy: Vec<f64> = y.iter().map(|v| v * c).collect();
        let sp: Vec<f64> = pred.iter().map(|v| v * c).collect();
        assert!((mape(&y, &pred) - mape(&sy, &sp)).abs() < 1e-10);
    }
}

#[test]
fn explained_variance_at_most_one() {
    let mut rng = StdRng::seed_from_u64(0x4d04);
    for _ in 0..CASES {
        let len = rng.gen_range(3..20usize);
        let y = random_vec(&mut rng, len, -5.0, 5.0);
        let noise = rng.gen_range(-1.0..1.0);
        if !y.iter().any(|&v| (v - y[0]).abs() > 1e-6) {
            continue;
        }
        let pred: Vec<f64> = y.iter().map(|v| v + noise * 0.3).collect();
        assert!(explained_variance(&y, &pred) <= 1.0 + 1e-12);
    }
}

#[test]
fn geometric_mean_between_min_and_max() {
    let mut rng = StdRng::seed_from_u64(0x4d05);
    for _ in 0..CASES {
        let len = rng.gen_range(1..20usize);
        let y = random_vec(&mut rng, len, 0.1, 10.0);
        let g = geometric_mean(&y);
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(0.0_f64, f64::max);
        assert!(g >= lo - 1e-12 && g <= hi + 1e-12);
    }
}

#[test]
fn quantiles_are_monotone() {
    let mut rng = StdRng::seed_from_u64(0x4d06);
    for _ in 0..CASES {
        let len = rng.gen_range(2..30usize);
        let y = random_vec(&mut rng, len, -10.0, 10.0);
        let a = rng.gen_range(0.0..1.0);
        let b = rng.gen_range(0.0..1.0);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(quantile(&y, lo) <= quantile(&y, hi) + 1e-12);
    }
}

#[test]
fn wasserstein_identity_and_symmetry() {
    let mut rng = StdRng::seed_from_u64(0x4d07);
    for _ in 0..CASES {
        let len = rng.gen_range(1..20usize);
        let a = random_vec(&mut rng, len, -5.0, 5.0);
        let len = rng.gen_range(1..20usize);
        let b = random_vec(&mut rng, len, -5.0, 5.0);
        assert!(wasserstein_1d(&a, &a) < 1e-12);
        let ab = wasserstein_1d(&a, &b);
        let ba = wasserstein_1d(&b, &a);
        assert!((ab - ba).abs() < 1e-12);
        assert!(ab >= 0.0);
    }
}

#[test]
fn wasserstein_translation_equivariance() {
    let mut rng = StdRng::seed_from_u64(0x4d08);
    for _ in 0..CASES {
        let len = rng.gen_range(1..15usize);
        let a = random_vec(&mut rng, len, -5.0, 5.0);
        let shift = rng.gen_range(-3.0..3.0);
        let b: Vec<f64> = a.iter().map(|v| v + shift).collect();
        assert!((wasserstein_1d(&a, &b) - shift.abs()).abs() < 1e-9);
    }
}

#[test]
fn tree_predictions_stay_within_label_range() {
    let mut rng = StdRng::seed_from_u64(0x4d09);
    for _ in 0..CASES {
        let (x, y) = labeled_data(&mut rng);
        let mut tree = RegressionTree::new(6, 1);
        tree.fit(&x, &y);
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for row in &x {
            let p = tree.predict_one(row);
            assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
        }
    }
}

#[test]
fn forest_predictions_stay_within_label_range() {
    let mut rng = StdRng::seed_from_u64(0x4d0a);
    for _ in 0..CASES {
        let (x, y) = labeled_data(&mut rng);
        let mut rf = RandomForest::new(8, 6, 1, 3);
        rf.fit(&x, &y);
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for row in x.iter().take(10) {
            let p = rf.predict_one(row);
            assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }
    }
}

#[test]
fn gbrt_training_error_decreases_with_stages() {
    let mut rng = StdRng::seed_from_u64(0x4d0b);
    for _ in 0..CASES {
        let (x, y) = labeled_data(&mut rng);
        if !y.iter().any(|&v| (v - y[0]).abs() > 1e-3) {
            continue;
        }
        let mut small = GradientBoosting::new(3, 0.3, 3, 1);
        let mut large = GradientBoosting::new(40, 0.3, 3, 1);
        small.fit(&x, &y);
        large.fit(&x, &y);
        let e_small = rmse(&y, &small.predict(&x));
        let e_large = rmse(&y, &large.predict(&x));
        assert!(e_large <= e_small + 1e-9, "{e_large} > {e_small}");
    }
}
