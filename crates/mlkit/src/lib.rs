//! # metadse-mlkit
//!
//! A small classical machine-learning toolkit implementing, from scratch,
//! every non-deep model the MetaDSE evaluation compares against or builds
//! on:
//!
//! * [`RegressionTree`] / [`RandomForest`] / [`GradientBoosting`] — the RF
//!   and GBRT baselines of Table II and the members of TrEnDSE's ensemble,
//! * [`RidgeRegression`] — the linear-fitting baseline family,
//! * [`kmeans::kmeans`] — TrDSE-style clustering,
//! * [`GaussianMixture`] — the generative data-augmentation baseline,
//! * [`wasserstein::wasserstein_1d`] — TrEnDSE's workload-similarity
//!   measure and the Fig. 2 heatmap,
//! * [`metrics`] — RMSE / MAPE / explained variance (paper Eqs. 1–3),
//!   geometric means, and confidence intervals.
//!
//! # Example
//!
//! ```
//! use metadse_mlkit::{GradientBoosting, Regressor, metrics};
//!
//! let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 50.0]).collect();
//! let y: Vec<f64> = x.iter().map(|v| 3.0 * v[0] * v[0]).collect();
//! let mut model = GradientBoosting::new(50, 0.2, 3, 2);
//! model.fit(&x, &y);
//! let err = metrics::rmse(&y, &model.predict(&x));
//! assert!(err < 0.1);
//! ```

pub mod forest;
pub mod gbrt;
pub mod gmm;
pub mod kmeans;
pub mod linear;
pub mod metrics;
pub mod tree;
pub mod wasserstein;

pub use forest::RandomForest;
pub use gbrt::GradientBoosting;
pub use gmm::GaussianMixture;
pub use kmeans::KMeans;
pub use linear::RidgeRegression;
pub use tree::RegressionTree;

/// A trainable single-output regression model over dense feature vectors.
///
/// All baselines in the MetaDSE reproduction implement this, so the
/// experiment harness can treat them uniformly.
pub trait Regressor {
    /// Fits the model to feature rows `x` and labels `y`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `x` is empty or `x.len() != y.len()`.
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]);

    /// Predicts the label of a single feature row.
    ///
    /// # Panics
    ///
    /// Implementations panic if called before [`Regressor::fit`].
    fn predict_one(&self, x: &[f64]) -> f64;

    /// Predicts labels for many rows.
    fn predict(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict_one(x)).collect()
    }
}
