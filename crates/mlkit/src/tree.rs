//! CART regression tree.

use rand::Rng;

use crate::Regressor;

/// Internal tree node.
#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf(f64),
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A CART regression tree with variance-reduction splits.
///
/// Supports per-split random feature subsetting (`max_features`), which is
/// what de-correlates the trees of a random forest.
///
/// # Example
///
/// ```
/// use metadse_mlkit::{RegressionTree, Regressor};
///
/// let x = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
/// let y = vec![0.0, 0.0, 10.0, 10.0];
/// let mut tree = RegressionTree::new(3, 1);
/// tree.fit(&x, &y);
/// assert_eq!(tree.predict_one(&[0.5]), 0.0);
/// assert_eq!(tree.predict_one(&[2.5]), 10.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionTree {
    max_depth: usize,
    min_samples_leaf: usize,
    max_features: Option<usize>,
    root: Option<Node>,
}

impl RegressionTree {
    /// Creates an unfitted tree.
    ///
    /// # Panics
    ///
    /// Panics if `max_depth` or `min_samples_leaf` is zero.
    pub fn new(max_depth: usize, min_samples_leaf: usize) -> RegressionTree {
        assert!(
            max_depth > 0 && min_samples_leaf > 0,
            "invalid tree hyperparameters"
        );
        RegressionTree {
            max_depth,
            min_samples_leaf,
            max_features: None,
            root: None,
        }
    }

    /// Limits each split to a random subset of `k` features (random-forest
    /// style). `fit` then requires an RNG via [`RegressionTree::fit_seeded`].
    pub fn with_max_features(mut self, k: usize) -> RegressionTree {
        self.max_features = Some(k.max(1));
        self
    }

    /// Whether the tree has been fitted.
    pub fn is_fitted(&self) -> bool {
        self.root.is_some()
    }

    /// Fits with an explicit RNG (needed when feature subsetting is on).
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or lengths disagree.
    pub fn fit_seeded<R: Rng + ?Sized>(&mut self, x: &[Vec<f64>], y: &[f64], rng: &mut R) {
        assert!(!x.is_empty(), "cannot fit on an empty dataset");
        assert_eq!(x.len(), y.len(), "feature/label length mismatch");
        let indices: Vec<usize> = (0..x.len()).collect();
        self.root = Some(self.build(x, y, &indices, 0, rng));
    }

    fn build<R: Rng + ?Sized>(
        &self,
        x: &[Vec<f64>],
        y: &[f64],
        indices: &[usize],
        depth: usize,
        rng: &mut R,
    ) -> Node {
        let mean = indices.iter().map(|&i| y[i]).sum::<f64>() / indices.len() as f64;
        if depth >= self.max_depth || indices.len() < 2 * self.min_samples_leaf {
            return Node::Leaf(mean);
        }
        let n_features = x[0].len();
        let candidates: Vec<usize> = match self.max_features {
            Some(k) if k < n_features => {
                // Sample k distinct features.
                let mut all: Vec<usize> = (0..n_features).collect();
                for i in 0..k {
                    let j = rng.gen_range(i..all.len());
                    all.swap(i, j);
                }
                all.truncate(k);
                all
            }
            _ => (0..n_features).collect(),
        };

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
        for &f in &candidates {
            if let Some((threshold, sse)) = best_split_on(x, y, indices, f, self.min_samples_leaf) {
                if best.is_none() || sse < best.unwrap().2 {
                    best = Some((f, threshold, sse));
                }
            }
        }
        let Some((feature, threshold, _)) = best else {
            return Node::Leaf(mean);
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            indices.iter().partition(|&&i| x[i][feature] <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            return Node::Leaf(mean);
        }
        Node::Split {
            feature,
            threshold,
            left: Box::new(self.build(x, y, &left_idx, depth + 1, rng)),
            right: Box::new(self.build(x, y, &right_idx, depth + 1, rng)),
        }
    }
}

/// Best threshold for one feature by total SSE of the two children
/// (prefix-sum scan over the sorted column). Returns `None` when no legal
/// split exists.
fn best_split_on(
    x: &[Vec<f64>],
    y: &[f64],
    indices: &[usize],
    feature: usize,
    min_leaf: usize,
) -> Option<(f64, f64)> {
    let mut order: Vec<usize> = indices.to_vec();
    order.sort_by(|&a, &b| x[a][feature].total_cmp(&x[b][feature]));
    let n = order.len();
    // Prefix sums of y and y² in sorted order.
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    let prefix: Vec<(f64, f64)> = order
        .iter()
        .map(|&i| {
            sum += y[i];
            sum_sq += y[i] * y[i];
            (sum, sum_sq)
        })
        .collect();
    let (total, total_sq) = prefix[n - 1];

    let mut best: Option<(f64, f64)> = None;
    for split in min_leaf..=(n - min_leaf) {
        if split == n {
            break;
        }
        let (xl, xr) = (x[order[split - 1]][feature], x[order[split]][feature]);
        if xl == xr {
            continue; // cannot separate equal values
        }
        let (ls, lsq) = prefix[split - 1];
        let (rs, rsq) = (total - ls, total_sq - lsq);
        let nl = split as f64;
        let nr = (n - split) as f64;
        let sse = (lsq - ls * ls / nl) + (rsq - rs * rs / nr);
        let threshold = 0.5 * (xl + xr);
        if best.is_none() || sse < best.unwrap().1 {
            best = Some((threshold, sse));
        }
    }
    best
}

impl Regressor for RegressionTree {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        // Deterministic fit: full feature search needs no randomness; the
        // seeded path only matters when max_features is set.
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        self.fit_seeded(x, y, &mut rng);
    }

    fn predict_one(&self, x: &[f64]) -> f64 {
        let mut node = self.root.as_ref().expect("predict called before fit");
        loop {
            match node {
                Node::Leaf(v) => return *v,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / n as f64]).collect();
        let y: Vec<f64> = x.iter().map(|v| (6.0 * v[0]).sin()).collect();
        (x, y)
    }

    #[test]
    fn perfectly_separable_step_function() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![1.0, 1.0, 5.0, 5.0];
        let mut t = RegressionTree::new(4, 1);
        t.fit(&x, &y);
        assert_eq!(t.predict(&x), y);
    }

    #[test]
    fn deeper_trees_fit_better() {
        let (x, y) = grid(128);
        let mut shallow = RegressionTree::new(2, 1);
        let mut deep = RegressionTree::new(6, 1);
        shallow.fit(&x, &y);
        deep.fit(&x, &y);
        let err = |t: &RegressionTree| -> f64 { crate::metrics::rmse(&y, &t.predict(&x)) };
        assert!(err(&deep) < err(&shallow) * 0.5);
    }

    #[test]
    fn min_leaf_caps_resolution() {
        let (x, y) = grid(64);
        let mut coarse = RegressionTree::new(12, 16);
        coarse.fit(&x, &y);
        // With min 16 samples per leaf, at most 4 leaves exist.
        let preds = coarse.predict(&x);
        let mut distinct: Vec<f64> = preds.clone();
        distinct.sort_by(f64::total_cmp);
        distinct.dedup();
        assert!(distinct.len() <= 4, "{} leaves", distinct.len());
    }

    #[test]
    fn constant_labels_yield_single_leaf() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0]];
        let y = vec![7.0, 7.0, 7.0];
        let mut t = RegressionTree::new(5, 1);
        t.fit(&x, &y);
        assert_eq!(t.predict_one(&[10.0]), 7.0);
    }

    #[test]
    fn splits_use_the_informative_feature() {
        // Feature 1 is noise; feature 0 determines y.
        let x: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 2) as f64, (i * 7 % 13) as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|v| v[0] * 100.0).collect();
        let mut t = RegressionTree::new(3, 1);
        t.fit(&x, &y);
        assert_eq!(t.predict_one(&[0.0, 3.0]), 0.0);
        assert_eq!(t.predict_one(&[1.0, 9.0]), 100.0);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn fit_on_empty_panics() {
        let mut t = RegressionTree::new(3, 1);
        t.fit(&[], &[]);
    }
}
