//! Gradient-boosted regression trees (squared loss).

use metadse_parallel::ParallelConfig;

use crate::tree::RegressionTree;
use crate::Regressor;

/// Below this many rows, per-sample fan-out costs more than it saves.
const PARALLEL_PREDICT_MIN_ROWS: usize = 64;

/// GBRT: stage-wise additive model where each shallow tree fits the current
/// residuals, shrunk by a learning rate.
///
/// One of the Table II baselines ("GBRT").
#[derive(Debug, Clone, PartialEq)]
pub struct GradientBoosting {
    n_estimators: usize,
    learning_rate: f64,
    max_depth: usize,
    min_samples_leaf: usize,
    parallel: ParallelConfig,
    base_prediction: f64,
    trees: Vec<RegressionTree>,
}

impl GradientBoosting {
    /// Creates an unfitted booster.
    ///
    /// # Panics
    ///
    /// Panics if `n_estimators` is zero or `learning_rate` is not in
    /// `(0, 1]`.
    pub fn new(
        n_estimators: usize,
        learning_rate: f64,
        max_depth: usize,
        min_samples_leaf: usize,
    ) -> GradientBoosting {
        assert!(n_estimators > 0, "need at least one estimator");
        assert!(
            learning_rate > 0.0 && learning_rate <= 1.0,
            "learning rate must be in (0, 1]"
        );
        GradientBoosting {
            n_estimators,
            learning_rate,
            max_depth,
            min_samples_leaf,
            parallel: ParallelConfig::default(),
            base_prediction: 0.0,
            trees: Vec::new(),
        }
    }

    /// The paper-style default: 200 stages of depth-3 trees at rate 0.08.
    pub fn default_for_dse() -> GradientBoosting {
        GradientBoosting::new(200, 0.08, 3, 2)
    }

    /// Sets the thread configuration used by [`Regressor::fit`].
    ///
    /// Boosting stages are inherently sequential (each tree fits the
    /// previous stage's residuals), so parallelism applies to the
    /// per-sample prediction sweep inside each stage.
    pub fn with_parallel(mut self, parallel: ParallelConfig) -> GradientBoosting {
        self.parallel = parallel;
        self
    }

    /// Number of fitted stages.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the model is unfitted.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

impl Regressor for GradientBoosting {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert!(!x.is_empty(), "cannot fit on an empty dataset");
        assert_eq!(x.len(), y.len(), "feature/label length mismatch");
        self.base_prediction = y.iter().sum::<f64>() / y.len() as f64;
        let mut current: Vec<f64> = vec![self.base_prediction; y.len()];
        self.trees = Vec::with_capacity(self.n_estimators);
        let fan_out = x.len() >= PARALLEL_PREDICT_MIN_ROWS;
        for _ in 0..self.n_estimators {
            let residuals: Vec<f64> = y.iter().zip(&current).map(|(t, c)| t - c).collect();
            let mut tree = RegressionTree::new(self.max_depth, self.min_samples_leaf);
            tree.fit(x, &residuals);
            // Tree prediction is pure per sample; results come back in
            // sample order, so the update is identical across thread
            // counts.
            if fan_out {
                let preds = self
                    .parallel
                    .run_indexed(x.len(), |i| tree.predict_one(&x[i]));
                for (c, p) in current.iter_mut().zip(&preds) {
                    *c += self.learning_rate * p;
                }
            } else {
                for (c, xi) in current.iter_mut().zip(x) {
                    *c += self.learning_rate * tree.predict_one(xi);
                }
            }
            self.trees.push(tree);
        }
    }

    fn predict_one(&self, x: &[f64]) -> f64 {
        assert!(!self.trees.is_empty(), "predict called before fit");
        self.base_prediction
            + self.learning_rate * self.trees.iter().map(|t| t.predict_one(x)).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::rmse;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn wave(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f64>> = (0..n).map(|_| vec![rng.gen_range(0.0..1.0)]).collect();
        let y: Vec<f64> = x.iter().map(|v| (8.0 * v[0]).sin() + 2.0 * v[0]).collect();
        (x, y)
    }

    #[test]
    fn boosting_reduces_training_error_with_stages() {
        let (x, y) = wave(200, 1);
        let err = |stages: usize| -> f64 {
            let mut g = GradientBoosting::new(stages, 0.2, 3, 2);
            g.fit(&x, &y);
            rmse(&y, &g.predict(&x))
        };
        let few = err(5);
        let many = err(100);
        assert!(many < few * 0.3, "100 stages {many} vs 5 stages {few}");
    }

    #[test]
    fn generalizes_on_held_out_wave() {
        let (x, y) = wave(300, 2);
        let (tx, ty) = wave(150, 3);
        let mut g = GradientBoosting::default_for_dse();
        g.fit(&x, &y);
        let err = rmse(&ty, &g.predict(&tx));
        assert!(err < 0.15, "held-out rmse {err}");
    }

    #[test]
    fn single_stage_predicts_near_the_mean_shape() {
        let (x, y) = wave(100, 4);
        let mut g = GradientBoosting::new(1, 0.1, 2, 2);
        g.fit(&x, &y);
        // After one shrunk stage, predictions stay close to the base mean.
        let base = crate::metrics::mean(&y);
        for p in g.predict(&x) {
            assert!((p - base).abs() < 1.0);
        }
    }

    #[test]
    fn deterministic_refits() {
        let (x, y) = wave(100, 5);
        let mut a = GradientBoosting::new(20, 0.1, 3, 2);
        let mut b = GradientBoosting::new(20, 0.1, 3, 2);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict_one(&[0.37]), b.predict_one(&[0.37]));
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_bad_learning_rate() {
        let _ = GradientBoosting::new(10, 0.0, 3, 1);
    }
}
