//! Regression metrics and summary statistics (paper Eqs. 1–3).

/// Root mean squared error (paper Eq. 1).
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn rmse(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "length mismatch");
    assert!(!actual.is_empty(), "rmse of empty slice");
    let sse: f64 = actual
        .iter()
        .zip(predicted)
        .map(|(y, p)| (y - p) * (y - p))
        .sum();
    (sse / actual.len() as f64).sqrt()
}

/// Mean absolute percentage error, as a fraction (paper Eq. 2 divides by
/// 100 relative to this; multiply by 100 for percent).
///
/// # Panics
///
/// Panics if lengths differ, the slices are empty, or any actual value is
/// zero.
pub fn mape(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "length mismatch");
    assert!(!actual.is_empty(), "mape of empty slice");
    actual
        .iter()
        .zip(predicted)
        .map(|(y, p)| {
            assert!(*y != 0.0, "mape undefined for zero actual value");
            ((y - p) / y).abs()
        })
        .sum::<f64>()
        / actual.len() as f64
}

/// Explained variance (paper Eq. 3): `1 - SSE / SST`. Equals 1 for perfect
/// predictions, 0 for predicting the mean, negative for worse than the
/// mean.
///
/// # Panics
///
/// Panics if lengths differ or fewer than two points are given.
pub fn explained_variance(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "length mismatch");
    assert!(actual.len() >= 2, "explained variance needs >= 2 points");
    let mean = actual.iter().sum::<f64>() / actual.len() as f64;
    let sst: f64 = actual.iter().map(|y| (y - mean) * (y - mean)).sum();
    let sse: f64 = actual
        .iter()
        .zip(predicted)
        .map(|(y, p)| (y - p) * (y - p))
        .sum();
    if sst == 0.0 {
        if sse == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        1.0 - sse / sst
    }
}

/// Arithmetic mean.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of empty slice");
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample standard deviation (n−1 denominator; 0 for a single value).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn std_dev(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "std_dev of empty slice");
    if values.len() == 1 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// Geometric mean of positive values (the paper's GEOMEAN column).
///
/// # Panics
///
/// Panics on an empty slice or non-positive values.
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of empty slice");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean requires positive values");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Mean with a 95% normal-approximation confidence half-width (the `±`
/// column of Table II).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn mean_with_ci95(values: &[f64]) -> (f64, f64) {
    let m = mean(values);
    let half = 1.96 * std_dev(values) / (values.len() as f64).sqrt();
    (m, half)
}

/// Linear-interpolation quantile, `q` in `[0, 1]`.
///
/// # Panics
///
/// Panics on an empty slice or `q` outside `[0, 1]`.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile level out of range");
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_hand_computed() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        // Errors 1 and -1 -> RMSE 1.
        assert!((rmse(&[1.0, 2.0], &[2.0, 1.0]) - 1.0).abs() < 1e-12);
        // Errors 3 and 4 -> sqrt(25/2).
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mape_hand_computed() {
        // |1-1.1|/1 = 0.1, |2-1.8|/2 = 0.1 -> 0.1
        assert!((mape(&[1.0, 2.0], &[1.1, 1.8]) - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero actual")]
    fn mape_rejects_zero_actuals() {
        let _ = mape(&[0.0], &[1.0]);
    }

    #[test]
    fn explained_variance_reference_points() {
        let y = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(explained_variance(&y, &y), 1.0);
        let mean_pred = [2.5; 4];
        assert!(explained_variance(&y, &mean_pred).abs() < 1e-12);
        let bad = [4.0, 3.0, 2.0, 1.0];
        assert!(explained_variance(&y, &bad) < 0.0);
    }

    #[test]
    fn geometric_mean_of_powers() {
        assert!((geometric_mean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ci_shrinks_with_sample_count() {
        let few = vec![1.0, 2.0, 3.0, 4.0];
        let many: Vec<f64> = few.iter().cycle().take(64).copied().collect();
        let (_, ci_few) = mean_with_ci95(&few);
        let (_, ci_many) = mean_with_ci95(&many);
        assert!(ci_many < ci_few);
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 4.0);
        assert!((quantile(&v, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn std_dev_matches_manual() {
        assert_eq!(std_dev(&[5.0]), 0.0);
        // Var of {1,3} with n-1: (1+1)/1 = 2.
        assert!((std_dev(&[1.0, 3.0]) - 2.0f64.sqrt()).abs() < 1e-12);
    }
}
