//! Diagonal-covariance Gaussian mixture model fitted by EM.
//!
//! Implements the generative-modeling baseline family (Ding et al.'s
//! data-augmentation approach models DSE datasets with a GMM and re-weights
//! components to synthesize rare configurations).

use rand::Rng;

/// A Gaussian mixture with diagonal covariances.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianMixture {
    /// Mixing weights (sum to 1).
    pub weights: Vec<f64>,
    /// Component means, `k × d`.
    pub means: Vec<Vec<f64>>,
    /// Component variances, `k × d` (floored for stability).
    pub variances: Vec<Vec<f64>>,
}

const VAR_FLOOR: f64 = 1e-6;

impl GaussianMixture {
    /// Fits a `k`-component mixture to `data` with `iters` EM iterations,
    /// initializing means from random data points.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty, `k` is zero, or `k > data.len()`.
    pub fn fit<R: Rng + ?Sized>(
        data: &[Vec<f64>],
        k: usize,
        iters: usize,
        rng: &mut R,
    ) -> GaussianMixture {
        assert!(!data.is_empty(), "gmm on empty data");
        assert!(k > 0 && k <= data.len(), "k must be in 1..=n");
        let d = data[0].len();
        let n = data.len();

        // Global variance for initialization.
        let mut global_mean = vec![0.0; d];
        for x in data {
            for (m, v) in global_mean.iter_mut().zip(x) {
                *m += v / n as f64;
            }
        }
        let mut global_var = vec![0.0; d];
        for x in data {
            for ((gv, v), m) in global_var.iter_mut().zip(x).zip(&global_mean) {
                *gv += (v - m) * (v - m) / n as f64;
            }
        }
        for gv in &mut global_var {
            *gv = gv.max(VAR_FLOOR);
        }

        let mut model = GaussianMixture {
            weights: vec![1.0 / k as f64; k],
            means: (0..k).map(|_| data[rng.gen_range(0..n)].clone()).collect(),
            variances: vec![global_var.clone(); k],
        };

        let mut resp = vec![vec![0.0; k]; n];
        for _ in 0..iters {
            // E-step.
            for (i, x) in data.iter().enumerate() {
                let logp: Vec<f64> = (0..k)
                    .map(|c| model.weights[c].max(1e-300).ln() + model.log_density(c, x))
                    .collect();
                let max = logp.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mut total = 0.0;
                for (r, lp) in resp[i].iter_mut().zip(&logp) {
                    *r = (lp - max).exp();
                    total += *r;
                }
                for r in &mut resp[i] {
                    *r /= total;
                }
            }
            // M-step.
            for c in 0..k {
                let nk: f64 = resp.iter().map(|r| r[c]).sum();
                if nk < 1e-9 {
                    continue; // dead component, keep previous parameters
                }
                model.weights[c] = nk / n as f64;
                for j in 0..d {
                    let mean = data
                        .iter()
                        .zip(&resp)
                        .map(|(x, r)| r[c] * x[j])
                        .sum::<f64>()
                        / nk;
                    model.means[c][j] = mean;
                    let var = data
                        .iter()
                        .zip(&resp)
                        .map(|(x, r)| r[c] * (x[j] - mean) * (x[j] - mean))
                        .sum::<f64>()
                        / nk;
                    model.variances[c][j] = var.max(VAR_FLOOR);
                }
            }
        }
        model
    }

    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.weights.len()
    }

    /// Log density of `x` under component `c`.
    fn log_density(&self, c: usize, x: &[f64]) -> f64 {
        let mut lp = 0.0;
        for ((v, m), var) in x.iter().zip(&self.means[c]).zip(&self.variances[c]) {
            let diff = v - m;
            lp += -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + diff * diff / var);
        }
        lp
    }

    /// Log likelihood of `x` under the full mixture.
    pub fn log_likelihood(&self, x: &[f64]) -> f64 {
        let logp: Vec<f64> = (0..self.num_components())
            .map(|c| self.weights[c].max(1e-300).ln() + self.log_density(c, x))
            .collect();
        let max = logp.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        max + logp.iter().map(|lp| (lp - max).exp()).sum::<f64>().ln()
    }

    /// Average log likelihood over a dataset.
    pub fn mean_log_likelihood(&self, data: &[Vec<f64>]) -> f64 {
        data.iter().map(|x| self.log_likelihood(x)).sum::<f64>() / data.len() as f64
    }

    /// Draws one sample from the mixture.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let mut pick = rng.gen_range(0.0..1.0);
        let mut c = self.num_components() - 1;
        for (i, &w) in self.weights.iter().enumerate() {
            if pick < w {
                c = i;
                break;
            }
            pick -= w;
        }
        self.means[c]
            .iter()
            .zip(&self.variances[c])
            .map(|(m, v)| {
                // Box-Muller.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                m + v.sqrt() * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            })
            .collect()
    }

    /// Returns a copy with two components' mixing weights swapped — the
    /// augmentation trick of the generative baseline (swapping rare and
    /// common component weights to oversample rare regions).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn with_swapped_weights(&self, a: usize, b: usize) -> GaussianMixture {
        let mut out = self.clone();
        out.weights.swap(a, b);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn planted_mixture(n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let center = if i % 3 == 0 { -5.0 } else { 5.0 };
                vec![center + rng.gen_range(-0.5..0.5)]
            })
            .collect()
    }

    #[test]
    fn recovers_planted_centers() {
        let data = planted_mixture(300, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let gmm = GaussianMixture::fit(&data, 2, 50, &mut rng);
        let mut centers: Vec<f64> = gmm.means.iter().map(|m| m[0]).collect();
        centers.sort_by(f64::total_cmp);
        assert!((centers[0] + 5.0).abs() < 0.3, "center {}", centers[0]);
        assert!((centers[1] - 5.0).abs() < 0.3, "center {}", centers[1]);
        // Mixing weights reflect the 1/3 : 2/3 split.
        let w_small = gmm.weights.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((w_small - 1.0 / 3.0).abs() < 0.1);
    }

    #[test]
    fn likelihood_improves_over_em_iterations() {
        let data = planted_mixture(200, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let early = GaussianMixture::fit(&data, 2, 1, &mut rng);
        let mut rng = StdRng::seed_from_u64(4);
        let late = GaussianMixture::fit(&data, 2, 40, &mut rng);
        assert!(late.mean_log_likelihood(&data) >= early.mean_log_likelihood(&data));
    }

    #[test]
    fn weights_sum_to_one() {
        let data = planted_mixture(100, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let gmm = GaussianMixture::fit(&data, 3, 20, &mut rng);
        let total: f64 = gmm.weights.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn samples_come_from_the_support() {
        let data = planted_mixture(200, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let gmm = GaussianMixture::fit(&data, 2, 30, &mut rng);
        for _ in 0..50 {
            let s = gmm.sample(&mut rng);
            assert!(
                (s[0] + 5.0).abs() < 3.0 || (s[0] - 5.0).abs() < 3.0,
                "sample {} far from both modes",
                s[0]
            );
        }
    }

    #[test]
    fn swapping_weights_preserves_everything_else() {
        let data = planted_mixture(100, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let gmm = GaussianMixture::fit(&data, 2, 10, &mut rng);
        let swapped = gmm.with_swapped_weights(0, 1);
        assert_eq!(swapped.weights[0], gmm.weights[1]);
        assert_eq!(swapped.means, gmm.means);
        assert_eq!(swapped.variances, gmm.variances);
    }
}
