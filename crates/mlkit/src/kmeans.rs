//! k-means clustering (Lloyd's algorithm with k-means++ seeding).
//!
//! Used in the TrDSE-style similarity analysis (clustering workload
//! feature distributions) and available for SimPoint-like phase grouping.

use rand::Rng;

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeans {
    /// Cluster centroids, `k × d`.
    pub centroids: Vec<Vec<f64>>,
    /// Cluster index of each input point.
    pub assignments: Vec<usize>,
    /// Final within-cluster sum of squares.
    pub inertia: f64,
}

fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Runs k-means on `points`.
///
/// # Panics
///
/// Panics if `points` is empty, `k` is zero, or `k > points.len()`.
pub fn kmeans<R: Rng + ?Sized>(
    points: &[Vec<f64>],
    k: usize,
    max_iters: usize,
    rng: &mut R,
) -> KMeans {
    assert!(!points.is_empty(), "kmeans on empty data");
    assert!(k > 0 && k <= points.len(), "k must be in 1..=n");

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    while centroids.len() < k {
        let d2: Vec<f64> = points
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| squared_distance(p, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = d2.iter().sum();
        if total == 0.0 {
            // All remaining points coincide with centroids; duplicate one.
            centroids.push(points[rng.gen_range(0..points.len())].clone());
            continue;
        }
        let mut pick = rng.gen_range(0.0..total);
        let mut chosen = points.len() - 1;
        for (i, &w) in d2.iter().enumerate() {
            if pick < w {
                chosen = i;
                break;
            }
            pick -= w;
        }
        centroids.push(points[chosen].clone());
    }

    let d = points[0].len();
    let mut assignments = vec![0usize; points.len()];
    for _ in 0..max_iters {
        // Assign.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    squared_distance(p, &centroids[a])
                        .total_cmp(&squared_distance(p, &centroids[b]))
                })
                .expect("k > 0");
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Update.
        let mut sums = vec![vec![0.0; d]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, v) in sums[a].iter_mut().zip(p) {
                *s += v;
            }
        }
        for (c, (sum, &count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
            if count > 0 {
                *c = sum.iter().map(|s| s / count as f64).collect();
            }
        }
        if !changed {
            break;
        }
    }

    let inertia = points
        .iter()
        .zip(&assignments)
        .map(|(p, &a)| squared_distance(p, &centroids[a]))
        .sum();
    KMeans {
        centroids,
        assignments,
        inertia,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..20 {
            let jitter = (i % 5) as f64 * 0.01;
            pts.push(vec![0.0 + jitter, 0.0]);
            pts.push(vec![10.0 + jitter, 10.0]);
        }
        pts
    }

    #[test]
    fn separates_well_separated_blobs() {
        let pts = two_blobs();
        let mut rng = StdRng::seed_from_u64(1);
        let result = kmeans(&pts, 2, 50, &mut rng);
        // Points alternate blob membership by construction.
        let a = result.assignments[0];
        let b = result.assignments[1];
        assert_ne!(a, b);
        for (i, &assign) in result.assignments.iter().enumerate() {
            assert_eq!(assign, if i % 2 == 0 { a } else { b });
        }
        assert!(result.inertia < 1.0);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let pts = vec![vec![0.0], vec![1.0], vec![5.0]];
        let mut rng = StdRng::seed_from_u64(2);
        let result = kmeans(&pts, 3, 20, &mut rng);
        assert!(result.inertia < 1e-12);
    }

    #[test]
    fn more_clusters_never_increase_inertia() {
        let pts = two_blobs();
        let mut rng = StdRng::seed_from_u64(3);
        let i2 = kmeans(&pts, 2, 50, &mut rng).inertia;
        let mut rng = StdRng::seed_from_u64(3);
        let i4 = kmeans(&pts, 4, 50, &mut rng).inertia;
        assert!(i4 <= i2 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn rejects_oversized_k() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = kmeans(&[vec![1.0]], 2, 10, &mut rng);
    }

    #[test]
    fn identical_points_are_handled() {
        let pts = vec![vec![2.0, 2.0]; 8];
        let mut rng = StdRng::seed_from_u64(5);
        let result = kmeans(&pts, 3, 10, &mut rng);
        assert!(result.inertia < 1e-12);
    }
}
