//! Random forest regressor (bagged CART trees with feature subsetting).

use metadse_parallel::ParallelConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tree::RegressionTree;
use crate::Regressor;

/// SplitMix64 finalizer used to derive independent per-tree seeds: each
/// tree's RNG is a pure function of (forest seed, tree index), so trees
/// can fit on any thread in any order with bit-identical results.
fn derive_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed.wrapping_add(index.wrapping_add(1).wrapping_mul(0x9E3779B97F4A7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Random forest: bootstrap-resampled regression trees whose splits see a
/// random √d feature subset, averaged at prediction time.
///
/// One of the Table II baselines ("RF").
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForest {
    n_trees: usize,
    max_depth: usize,
    min_samples_leaf: usize,
    seed: u64,
    parallel: ParallelConfig,
    trees: Vec<RegressionTree>,
}

impl RandomForest {
    /// Creates an unfitted forest.
    ///
    /// # Panics
    ///
    /// Panics if `n_trees`, `max_depth` or `min_samples_leaf` is zero.
    pub fn new(
        n_trees: usize,
        max_depth: usize,
        min_samples_leaf: usize,
        seed: u64,
    ) -> RandomForest {
        assert!(n_trees > 0, "a forest needs trees");
        assert!(
            max_depth > 0 && min_samples_leaf > 0,
            "invalid tree hyperparameters"
        );
        RandomForest {
            n_trees,
            max_depth,
            min_samples_leaf,
            seed,
            parallel: ParallelConfig::default(),
            trees: Vec::new(),
        }
    }

    /// The paper-style default: 100 trees of depth 12.
    pub fn default_for_dse(seed: u64) -> RandomForest {
        RandomForest::new(100, 12, 2, seed)
    }

    /// Sets the thread configuration used by [`Regressor::fit`].
    pub fn with_parallel(mut self, parallel: ParallelConfig) -> RandomForest {
        self.parallel = parallel;
        self
    }

    /// Number of fitted trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the forest is unfitted.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

impl Regressor for RandomForest {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert!(!x.is_empty(), "cannot fit on an empty dataset");
        assert_eq!(x.len(), y.len(), "feature/label length mismatch");
        let d = x[0].len();
        let k = (d as f64).sqrt().round().max(1.0) as usize;
        // Each tree's bootstrap and feature subsets come from an RNG
        // derived from (seed, tree index), so tree `t` is the same no
        // matter which worker fits it.
        self.trees = self.parallel.run_indexed(self.n_trees, |t| {
            let mut rng = StdRng::seed_from_u64(derive_seed(self.seed, t as u64));
            // Bootstrap resample.
            let mut bx = Vec::with_capacity(x.len());
            let mut by = Vec::with_capacity(y.len());
            for _ in 0..x.len() {
                let i = rng.gen_range(0..x.len());
                bx.push(x[i].clone());
                by.push(y[i]);
            }
            let mut tree =
                RegressionTree::new(self.max_depth, self.min_samples_leaf).with_max_features(k);
            tree.fit_seeded(&bx, &by, &mut rng);
            tree
        });
    }

    fn predict_one(&self, x: &[f64]) -> f64 {
        assert!(!self.trees.is_empty(), "predict called before fit");
        self.trees.iter().map(|t| t.predict_one(x)).sum::<f64>() / self.trees.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::rmse;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn noisy_quadratic(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)])
            .collect();
        let y: Vec<f64> = x
            .iter()
            .map(|v| v[0] * v[0] + 0.5 * v[1] + 0.02 * rng.gen_range(-1.0..1.0))
            .collect();
        (x, y)
    }

    #[test]
    fn forest_beats_mean_predictor() {
        let (x, y) = noisy_quadratic(200, 1);
        let mut rf = RandomForest::new(30, 8, 2, 7);
        rf.fit(&x, &y);
        let (tx, ty) = noisy_quadratic(100, 2);
        let preds = rf.predict(&tx);
        let mean = crate::metrics::mean(&y);
        let mean_preds = vec![mean; ty.len()];
        assert!(rmse(&ty, &preds) < 0.5 * rmse(&ty, &mean_preds));
    }

    #[test]
    fn forest_is_deterministic_given_seed() {
        let (x, y) = noisy_quadratic(100, 3);
        let mut a = RandomForest::new(10, 6, 2, 42);
        let mut b = RandomForest::new(10, 6, 2, 42);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict_one(&[0.3, -0.2]), b.predict_one(&[0.3, -0.2]));
    }

    #[test]
    fn different_seeds_give_different_forests() {
        let (x, y) = noisy_quadratic(100, 3);
        let mut a = RandomForest::new(10, 6, 2, 1);
        let mut b = RandomForest::new(10, 6, 2, 2);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_ne!(a.predict_one(&[0.3, -0.2]), b.predict_one(&[0.3, -0.2]));
    }

    #[test]
    fn averaging_reduces_variance_vs_single_tree() {
        let (x, y) = noisy_quadratic(150, 5);
        let (tx, ty) = noisy_quadratic(150, 6);
        let mut forest = RandomForest::new(40, 10, 1, 9);
        forest.fit(&x, &y);
        let mut tree = crate::RegressionTree::new(10, 1);
        tree.fit(&x, &y);
        let forest_err = rmse(&ty, &forest.predict(&tx));
        let tree_err = rmse(&ty, &tree.predict(&tx));
        assert!(
            forest_err <= tree_err * 1.05,
            "forest {forest_err} vs tree {tree_err}"
        );
    }

    #[test]
    fn forest_is_bit_identical_across_thread_counts() {
        let (x, y) = noisy_quadratic(120, 11);
        let fit_with = |threads: usize| {
            // Cutoff 1 + oversubscribe: really spawn workers for these 12
            // trees even on a single-core host.
            let mut rf = RandomForest::new(12, 6, 2, 5).with_parallel(
                ParallelConfig::with_threads(threads)
                    .with_serial_cutoff(1)
                    .oversubscribed(),
            );
            rf.fit(&x, &y);
            rf
        };
        let serial = fit_with(1);
        for threads in [2, 4] {
            let parallel = fit_with(threads);
            assert_eq!(serial.trees, parallel.trees, "threads={threads} diverged");
        }
    }

    #[test]
    fn len_reports_tree_count() {
        let (x, y) = noisy_quadratic(50, 8);
        let mut rf = RandomForest::new(7, 4, 2, 0);
        assert!(rf.is_empty());
        rf.fit(&x, &y);
        assert_eq!(rf.len(), 7);
    }
}
