//! Ridge (L2-regularized linear) regression.
//!
//! Used for the linear-fitting family of cross-workload baselines
//! (Dubach et al.-style label-space mapping) and as a sanity baseline.

use crate::Regressor;

/// Ridge regression fitted by the normal equations
/// `(XᵀX + λI) w = Xᵀy` with an unregularized intercept.
#[derive(Debug, Clone, PartialEq)]
pub struct RidgeRegression {
    lambda: f64,
    weights: Vec<f64>,
    intercept: f64,
    fitted: bool,
}

impl RidgeRegression {
    /// Creates an unfitted model with regularization strength `lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative.
    pub fn new(lambda: f64) -> RidgeRegression {
        assert!(lambda >= 0.0, "lambda must be non-negative");
        RidgeRegression {
            lambda,
            weights: Vec::new(),
            intercept: 0.0,
            fitted: false,
        }
    }

    /// Fitted coefficients (empty before fitting).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }
}

/// Solves `A x = b` for symmetric positive-definite `A` by Gaussian
/// elimination with partial pivoting. `A` is row-major `n × n`.
#[allow(clippy::needless_range_loop)] // elimination reads two rows of `a` at once
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty system");
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        assert!(diag.abs() > 1e-12, "singular system (increase lambda)");
        for row in (col + 1)..n {
            let factor = a[row][col] / diag;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in (col + 1)..n {
            acc -= a[col][k] * x[k];
        }
        x[col] = acc / a[col][col];
    }
    x
}

impl Regressor for RidgeRegression {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert!(!x.is_empty(), "cannot fit on an empty dataset");
        assert_eq!(x.len(), y.len(), "feature/label length mismatch");
        let n = x.len() as f64;
        let d = x[0].len();
        // Center to fit the intercept without regularizing it.
        let x_mean: Vec<f64> = (0..d)
            .map(|j| x.iter().map(|row| row[j]).sum::<f64>() / n)
            .collect();
        let y_mean = y.iter().sum::<f64>() / n;

        let mut xtx = vec![vec![0.0; d]; d];
        let mut xty = vec![0.0; d];
        for (row, &yi) in x.iter().zip(y) {
            for j in 0..d {
                let xj = row[j] - x_mean[j];
                xty[j] += xj * (yi - y_mean);
                for k in j..d {
                    xtx[j][k] += xj * (row[k] - x_mean[k]);
                }
            }
        }
        #[allow(clippy::needless_range_loop)] // mirrors across two rows of `xtx`
        for j in 0..d {
            for k in 0..j {
                xtx[j][k] = xtx[k][j];
            }
            xtx[j][j] += self.lambda.max(1e-10);
        }
        self.weights = solve(xtx, xty);
        self.intercept = y_mean
            - self
                .weights
                .iter()
                .zip(&x_mean)
                .map(|(w, m)| w * m)
                .sum::<f64>();
        self.fitted = true;
    }

    fn predict_one(&self, x: &[f64]) -> f64 {
        assert!(self.fitted, "predict called before fit");
        self.intercept + self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relation() {
        // y = 2 x0 - 3 x1 + 5
        let x: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, (i * i % 7) as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v[0] - 3.0 * v[1] + 5.0).collect();
        let mut m = RidgeRegression::new(1e-8);
        m.fit(&x, &y);
        assert!((m.weights()[0] - 2.0).abs() < 1e-6);
        assert!((m.weights()[1] + 3.0).abs() < 1e-6);
        assert!((m.intercept() - 5.0).abs() < 1e-5);
    }

    #[test]
    fn regularization_shrinks_weights() {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 30.0]).collect();
        let y: Vec<f64> = x.iter().map(|v| 10.0 * v[0]).collect();
        let mut loose = RidgeRegression::new(1e-8);
        let mut tight = RidgeRegression::new(100.0);
        loose.fit(&x, &y);
        tight.fit(&x, &y);
        assert!(tight.weights()[0].abs() < loose.weights()[0].abs());
    }

    #[test]
    fn handles_constant_features_via_regularization() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![1.0, i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let mut m = RidgeRegression::new(1e-6);
        m.fit(&x, &y);
        let p = m.predict_one(&[1.0, 4.0]);
        assert!((p - 4.0).abs() < 1e-3, "{p}");
    }

    #[test]
    fn solver_solves_known_system() {
        // [[2,1],[1,3]] x = [3,5] -> x = [0.8, 1.4]
        let x = solve(vec![vec![2.0, 1.0], vec![1.0, 3.0]], vec![3.0, 5.0]);
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }
}
