//! One-dimensional Wasserstein (earth mover's) distance.
//!
//! TrEnDSE measures workload similarity as the Wasserstein distance between
//! metric distributions (paper §II and Fig. 2). In one dimension the
//! p = 1 distance has a closed form: the L1 distance between the empirical
//! quantile functions.

/// First Wasserstein distance between two empirical 1-D distributions.
///
/// Samples need not be sorted or equally sized; the empirical quantile
/// functions are compared on the merged probability grid, which is exact
/// for step CDFs.
///
/// # Panics
///
/// Panics if either sample is empty.
///
/// # Example
///
/// ```
/// use metadse_mlkit::wasserstein::wasserstein_1d;
///
/// // Point masses at 0 and at 3: distance 3.
/// assert_eq!(wasserstein_1d(&[0.0], &[3.0]), 3.0);
/// ```
pub fn wasserstein_1d(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "empty sample");
    let mut xs = a.to_vec();
    let mut ys = b.to_vec();
    xs.sort_by(f64::total_cmp);
    ys.sort_by(f64::total_cmp);

    if xs.len() == ys.len() {
        // Equal sizes: mean absolute difference of order statistics.
        return xs.iter().zip(&ys).map(|(x, y)| (x - y).abs()).sum::<f64>() / xs.len() as f64;
    }

    // General case: integrate |F⁻¹_a(q) − F⁻¹_b(q)| dq over the merged
    // quantile breakpoints of the two step functions.
    let na = xs.len() as f64;
    let nb = ys.len() as f64;
    let mut breaks: Vec<f64> = (1..xs.len()).map(|i| i as f64 / na).collect();
    breaks.extend((1..ys.len()).map(|i| i as f64 / nb));
    breaks.push(1.0);
    breaks.sort_by(f64::total_cmp);
    breaks.dedup();

    let mut distance = 0.0;
    let mut prev = 0.0;
    for &q in &breaks {
        // Quantile value on (prev, q]: index by the left endpoint.
        let qa = xs[((prev * na).floor() as usize).min(xs.len() - 1)];
        let qb = ys[((prev * nb).floor() as usize).min(ys.len() - 1)];
        distance += (qa - qb).abs() * (q - prev);
        prev = q;
    }
    distance
}

/// Symmetric distance matrix between several samples (Fig. 2's heatmap).
///
/// # Panics
///
/// Panics if any sample is empty.
pub fn distance_matrix(samples: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = samples.len();
    let mut m = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = wasserstein_1d(&samples[i], &samples[j]);
            m[i][j] = d;
            m[j][i] = d;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_of_indiscernibles() {
        let a = vec![1.0, 2.0, 5.0, -3.0];
        assert_eq!(wasserstein_1d(&a, &a), 0.0);
    }

    #[test]
    fn symmetry() {
        let a = vec![0.0, 1.0, 2.0];
        let b = vec![5.0, 1.5];
        assert!((wasserstein_1d(&a, &b) - wasserstein_1d(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn translation_moves_distance_by_shift() {
        let a = vec![0.0, 1.0, 2.0, 3.0];
        let b: Vec<f64> = a.iter().map(|x| x + 2.5).collect();
        assert!((wasserstein_1d(&a, &b) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn unequal_sizes_against_known_value() {
        // a = {0, 1} (mass 1/2 each), b = {0} (mass 1).
        // F⁻¹ differs only on q in (1/2, 1], where a gives 1, b gives 0.
        let d = wasserstein_1d(&[0.0, 1.0], &[0.0]);
        assert!((d - 0.5).abs() < 1e-12, "got {d}");
    }

    #[test]
    fn triangle_inequality_on_random_samples() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let gen = |rng: &mut StdRng, shift: f64| -> Vec<f64> {
                let n = rng.gen_range(3..20);
                (0..n).map(|_| rng.gen_range(-1.0..1.0) + shift).collect()
            };
            let a = gen(&mut rng, 0.0);
            let b = gen(&mut rng, 1.0);
            let c = gen(&mut rng, -0.5);
            let ab = wasserstein_1d(&a, &b);
            let bc = wasserstein_1d(&b, &c);
            let ac = wasserstein_1d(&a, &c);
            assert!(
                ac <= ab + bc + 1e-9,
                "triangle violated: {ac} > {ab} + {bc}"
            );
        }
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let samples = vec![vec![0.0, 1.0], vec![5.0, 6.0, 7.0], vec![-1.0]];
        let m = distance_matrix(&samples);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 0.0);
            for (j, v) in row.iter().enumerate() {
                assert!((v - m[j][i]).abs() < 1e-12);
            }
        }
        assert!(m[0][1] > 0.0);
    }
}
