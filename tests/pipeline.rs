//! End-to-end integration tests spanning every crate of the workspace:
//! simulate → dataset → meta-train → WAM-adapt → evaluate → explore.

use metadse_repro::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_predictor_config() -> PredictorConfig {
    PredictorConfig {
        d_model: 16,
        heads: 2,
        depth: 1,
        d_hidden: 32,
        head_hidden: 16,
        ..PredictorConfig::default()
    }
}

#[test]
fn full_metadse_pipeline_runs_and_learns() {
    let space = DesignSpace::new();
    let simulator = Simulator::new();
    let mut rng = StdRng::seed_from_u64(100);

    // 1. Simulate source, validation, and target datasets.
    let train: Vec<Dataset> = [SpecWorkload::Gcc602, SpecWorkload::X264_625]
        .iter()
        .map(|&w| Dataset::generate(&space, &simulator, w, 90, &mut rng))
        .collect();
    let val = vec![Dataset::generate(
        &space,
        &simulator,
        SpecWorkload::Leela641,
        90,
        &mut rng,
    )];
    let target = Dataset::generate(&space, &simulator, SpecWorkload::Omnetpp620, 90, &mut rng);

    // 2. MAML pre-training.
    let model = TransformerPredictor::new(tiny_predictor_config(), 3);
    let maml_cfg = MamlConfig {
        inner_lr: 0.05,
        epochs: 2,
        iterations_per_epoch: 8,
        val_tasks: 3,
        ..MamlConfig::paper()
    };
    let report = maml::pretrain(&model, &train, &val, Metric::Ipc, &maml_cfg);
    assert_eq!(report.val_losses.len(), 2);
    assert!(report.best_val_loss.is_finite());

    // 3. WAM mask generation from pre-training attention.
    let mask = wam::generate_mask(&model, &train, &WamConfig::default(), 32);
    assert_eq!(mask.shape(), vec![21, 21]);

    // 4. Few-shot adaptation on the unseen target beats a frozen model.
    let sampler = TaskSampler::new(10, 30);
    let adapt_cfg = AdaptConfig {
        steps: 10,
        lr: 0.05,
        lr_min: 1e-3,
        mask_lr_multiplier: 1.0,
    };
    let mut adapted = TaskScores::new();
    let mut frozen = TaskScores::new();
    let mut eval_rng = StdRng::seed_from_u64(200);
    for _ in 0..5 {
        let task = sampler.sample(&target, Metric::Ipc, &mut eval_rng);
        let p = wam::adapt_and_predict(&model, &task, Some(&mask), &adapt_cfg);
        adapted.push(&task.query_y, &p);
        frozen.push(&task.query_y, &model.predict(&task.query_x));
    }
    assert!(
        adapted.summary().rmse_mean < frozen.summary().rmse_mean,
        "adaptation must improve over the frozen meta-init: {} vs {}",
        adapted.summary().rmse_mean,
        frozen.summary().rmse_mean
    );

    // 5. The adapted surrogate drives exploration.
    let front = explore_pareto(
        &space,
        |batch| {
            let ipc = model.predict(batch);
            ipc.into_iter().map(|i| (i, 1.0)).collect()
        },
        &ExplorerConfig {
            initial_samples: 32,
            refinement_rounds: 1,
            beam: 4,
            seed: 7,
        },
    );
    assert!(!front.is_empty());
}

#[test]
fn trendse_pipeline_runs_on_simulated_data() {
    let space = DesignSpace::new();
    let simulator = Simulator::new();
    let mut rng = StdRng::seed_from_u64(300);
    let sources: Vec<Dataset> = [SpecWorkload::Gcc602, SpecWorkload::Bwaves603]
        .iter()
        .map(|&w| Dataset::generate(&space, &simulator, w, 80, &mut rng))
        .collect();
    let target = Dataset::generate(&space, &simulator, SpecWorkload::Mcf605, 60, &mut rng);
    let task = TaskSampler::new(10, 30).sample(&target, Metric::Ipc, &mut rng);

    let trendse = TrEnDse::new(sources, Metric::Ipc, TrEnDseConfig::default());
    let ranked = trendse.rank_sources(&task.support_y);
    assert_eq!(ranked.len(), 2);
    let preds = trendse.adapt_and_predict(&task.support_x, &task.support_y, &task.query_x);
    assert_eq!(preds.len(), 30);
    assert!(preds.iter().all(|p| p.is_finite()));
}

#[test]
fn experiment_harness_quick_scale_end_to_end() {
    use metadse_repro::core::experiment::{run_fig2, run_table3};

    let mut scale = Scale::quick();
    scale.samples_per_workload = 70;
    scale.eval_tasks = 2;
    let env = Environment::build(&scale, 55);

    let fig2 = run_fig2(&env);
    assert_eq!(fig2.names.len(), 17);

    let table3 = run_table3(&env, &scale, &[5]);
    assert_eq!(table3.rows.len(), 4);
    for row in &table3.rows {
        assert!(row.rmse_by_k[0].1.is_finite());
        assert!(row.rmse_by_k[0].1 > 0.0);
    }
}

#[test]
fn checkpointing_roundtrips_a_trained_predictor() {
    use metadse_repro::nn::layers::Module;
    use metadse_repro::nn::serialize::{load_params, save_params};

    let space = DesignSpace::new();
    let simulator = Simulator::new();
    let mut rng = StdRng::seed_from_u64(400);
    let data = Dataset::generate(&space, &simulator, SpecWorkload::Xz657, 40, &mut rng);
    let x: Vec<Vec<f64>> = data.samples().iter().map(|s| s.features.clone()).collect();
    let y = data.labels(Metric::Ipc);

    let model = TransformerPredictor::new(tiny_predictor_config(), 9);
    metadse_repro::core::trendse::train_supervised(&model, &x, &y, 2, 2e-3, 16, 1);
    let expected = model.predict(&x[..4]);

    let path = std::env::temp_dir().join(format!("metadse-it-{}.ckpt", std::process::id()));
    save_params(&model.params(), &path).expect("save");

    let restored = TransformerPredictor::new(tiny_predictor_config(), 10);
    load_params(&restored.params(), &path).expect("load");
    assert_eq!(restored.predict(&x[..4]), expected);
    std::fs::remove_file(path).ok();
}

#[test]
fn dataset_determinism_across_crate_boundaries() {
    // The same seed must produce identical labels through the whole stack
    // (design space sampling → phases → simulator → aggregation).
    let space = DesignSpace::new();
    let simulator = Simulator::new();
    let mut rng_a = StdRng::seed_from_u64(77);
    let mut rng_b = StdRng::seed_from_u64(77);
    let a = Dataset::generate(&space, &simulator, SpecWorkload::Lbm619, 25, &mut rng_a);
    let b = Dataset::generate(&space, &simulator, SpecWorkload::Lbm619, 25, &mut rng_b);
    assert_eq!(a, b);
}
