#!/usr/bin/env bash
# Escape-hatch matrix: the buffer pool (METADSE_POOL) and the fused
# kernels (METADSE_FUSED) are performance features with a bit-identity
# contract. This runs the nn and core suites in all four on/off
# combinations against one shared METADSE_DIGEST_FILE — the first
# combination records the pretrain digest, every later one must
# reproduce it bit-for-bit, so any combination that changes the
# numerics fails the run.
#
# Usage: scripts/test-matrix.sh [extra cargo test args…]
set -euo pipefail
cd "$(dirname "$0")/.."

digest_file="${METADSE_DIGEST_FILE:-$(mktemp -t metadse-matrix-digest.XXXXXX)}"
export METADSE_DIGEST_FILE="$digest_file"

for pool in 0 1; do
  for fused in 0 1; do
    echo "=== METADSE_POOL=$pool METADSE_FUSED=$fused ==="
    METADSE_POOL=$pool METADSE_FUSED=$fused \
      cargo test -q -p metadse-nn -p metadse "$@"
  done
done

echo "all four pool×fused combinations reproduced digest $(cat "$digest_file")"
