#!/usr/bin/env bash
# Escape-hatch matrix: the buffer pool (METADSE_POOL), the fused
# kernels (METADSE_FUSED) and the tensor backend (METADSE_BACKEND) are
# performance features with a bit-identity contract. This runs the nn
# and core suites in all eight combinations against one shared
# METADSE_DIGEST_FILE — within each backend the first combination
# records the pretrain digest and every later one must reproduce it
# bit-for-bit, so any combination that changes the numerics fails the
# run. The two backends pin *separate* digests (the SIMD backend
# reassociates reductions, so its bits legitimately differ): the core
# test suites suffix the digest path with ".simd" when the SIMD backend
# is active.
#
# Usage: scripts/test-matrix.sh [extra cargo test args…]
set -euo pipefail
cd "$(dirname "$0")/.."

digest_file="${METADSE_DIGEST_FILE:-$(mktemp -t metadse-matrix-digest.XXXXXX)}"
export METADSE_DIGEST_FILE="$digest_file"

for backend in scalar simd; do
  for pool in 0 1; do
    for fused in 0 1; do
      echo "=== METADSE_BACKEND=$backend METADSE_POOL=$pool METADSE_FUSED=$fused ==="
      METADSE_BACKEND=$backend METADSE_POOL=$pool METADSE_FUSED=$fused \
        cargo test -q -p metadse-nn -p metadse "$@"
      # The compiled-plan parity suite pins its own digest per backend
      # (suffix ".plan"): the plan path ignores the pool and fused
      # toggles, so all four combinations must reproduce it too.
      METADSE_BACKEND=$backend METADSE_POOL=$pool METADSE_FUSED=$fused \
        cargo test -q -p metadse-serve --test plan "$@"
    done
  done
done

echo "all pool×fused combinations reproduced digest $(cat "$digest_file") (scalar)"
echo "all pool×fused combinations reproduced digest $(cat "$digest_file.simd") (simd)"
echo "compiled plans reproduced digest $(cat "$digest_file.plan") (scalar)"
echo "compiled plans reproduced digest $(cat "$digest_file.plan.simd") (simd)"
