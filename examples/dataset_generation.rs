//! Dataset generation and simulator introspection: materialize design
//! points, inspect the analytical model's CPI breakdown, SimPoint phases,
//! and write/read a CSV dataset.
//!
//! ```text
//! cargo run --release --example dataset_generation
//! ```

use metadse_repro::prelude::*;
use metadse_repro::sim::ParamSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let space = DesignSpace::new();
    println!("Table I design space:");
    for spec in space.specs() {
        let values: Vec<String> = spec.candidates().iter().map(|v| format!("{v}")).collect();
        let preview = if values.len() > 6 {
            format!(
                "{}, …, {} ({} candidates)",
                values[..3].join(", "),
                values.last().unwrap(),
                values.len()
            )
        } else {
            values.join(", ")
        };
        println!("  {:<22} {}", spec.id().name(), preview);
    }
    let total: f64 = space
        .specs()
        .iter()
        .map(ParamSpec::cardinality)
        .product::<usize>() as f64;
    println!("  => {total:.3e} total configurations\n");

    // One configuration, dissected.
    let simulator = Simulator::new();
    let mut rng = StdRng::seed_from_u64(11);
    let point = space.random_point(&mut rng);
    let config = space.config(&point);
    println!("sampled configuration: {config:#?}\n");

    let workload = SpecWorkload::Gcc602;
    let out = simulator.simulate(&config, &workload.profile());
    println!("simulated under {}:", workload.name());
    println!("  IPC                {:.3}", out.ipc);
    println!("  power              {:.2} W", out.power_w);
    println!("  area               {:.1} mm²", out.area_mm2);
    println!("  L1D miss rate      {:.1} %", out.l1d_miss_rate * 100.0);
    println!("  L2 miss rate       {:.1} %", out.l2_miss_rate * 100.0);
    println!(
        "  branch mispredict  {:.2} %",
        out.branch_mispredict_rate * 100.0
    );
    println!(
        "  CPI breakdown      base {:.2} + branch {:.2} + memory {:.2}\n",
        out.cpi_base, out.cpi_branch, out.cpi_memory
    );

    // SimPoint phases of the workload.
    let phases = PhaseSet::generate(workload);
    let hottest = phases
        .phases()
        .iter()
        .max_by(|a, b| a.weight.total_cmp(&b.weight))
        .expect("phases exist");
    println!(
        "{} decomposes into {} SimPoint phases; hottest carries {:.0}% of execution",
        workload.name(),
        phases.len(),
        hottest.weight * 100.0
    );

    // Dataset generation + CSV round trip.
    let dataset = Dataset::generate(&space, &simulator, workload, 50, &mut rng);
    let path = std::env::temp_dir().join("metadse_example_dataset.csv");
    dataset.write_csv(&path).expect("write CSV");
    let back = Dataset::read_csv(&path).expect("read CSV");
    println!(
        "wrote and re-read {} rows for {} at {}",
        back.len(),
        back.workload_name(),
        path.display()
    );
    std::fs::remove_file(&path).ok();
}
