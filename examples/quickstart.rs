//! Quickstart: simulate a few CPU configurations, train a surrogate on
//! them, and predict unseen configurations.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use metadse_repro::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. The Table I design space: 21 microarchitectural parameters.
    let space = DesignSpace::new();
    println!(
        "design space: {} parameters, {:.2e} configurations",
        space.num_params(),
        space.cardinality() as f64
    );

    // 2. The analytical simulator (gem5 + McPAT stand-in) labels design
    //    points for a workload in microseconds.
    let simulator = Simulator::new();
    let mut rng = StdRng::seed_from_u64(42);
    let workload = SpecWorkload::Xz657;
    let dataset = Dataset::generate(&space, &simulator, workload, 120, &mut rng);
    println!(
        "simulated {} labeled points for {}",
        dataset.len(),
        workload.name()
    );

    // 3. Train the transformer surrogate on 100 points, hold out 20.
    let (train, test) = dataset.samples().split_at(100);
    let train_x: Vec<Vec<f64>> = train.iter().map(|s| s.features.clone()).collect();
    let train_y: Vec<f64> = train.iter().map(|s| s.ipc).collect();
    let test_x: Vec<Vec<f64>> = test.iter().map(|s| s.features.clone()).collect();
    let test_y: Vec<f64> = test.iter().map(|s| s.ipc).collect();

    let model = TransformerPredictor::new(PredictorConfig::default(), 7);
    println!("predictor: {} weights", model.num_weights());
    metadse_repro::core::trendse::train_supervised(&model, &train_x, &train_y, 12, 2e-3, 16, 3);

    // 4. Evaluate.
    let preds = model.predict(&test_x);
    let rmse = metrics::rmse(&test_y, &preds);
    let spread = metrics::std_dev(&test_y);
    println!("held-out IPC RMSE: {rmse:.4}  (label std {spread:.4})");
    for (i, (p, y)) in preds.iter().zip(&test_y).take(5).enumerate() {
        println!("  sample {i}: predicted {p:.3}, simulated {y:.3}");
    }
    assert!(
        rmse < spread,
        "the surrogate should beat the mean predictor"
    );
    println!("ok: surrogate beats the trivial predictor");
}
