//! Surrogate-driven Pareto exploration: adapt IPC and power predictors to
//! a target workload from a handful of simulations, sweep the design space
//! with the surrogates, then validate the predicted Pareto front against
//! the simulator.
//!
//! ```text
//! cargo run --release --example pareto_exploration
//! ```

use metadse_repro::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let space = DesignSpace::new();
    let simulator = Simulator::new();
    let target = SpecWorkload::Cam4_627;
    let mut rng = StdRng::seed_from_u64(21);

    // The "budget": 80 simulations of the target workload.
    let data = Dataset::generate(&space, &simulator, target, 80, &mut rng);
    let x: Vec<Vec<f64>> = data.samples().iter().map(|s| s.features.clone()).collect();
    let ipc: Vec<f64> = data.labels(Metric::Ipc);
    let power: Vec<f64> = data.labels(Metric::Power);
    // Normalize power for training stability; un-scale at prediction time.
    let p_scale = metrics::std_dev(&power).max(1e-9);
    let power_n: Vec<f64> = power.iter().map(|p| p / p_scale).collect();

    let config = PredictorConfig {
        d_model: 16,
        heads: 2,
        depth: 1,
        d_hidden: 32,
        head_hidden: 16,
        ..PredictorConfig::default()
    };
    let ipc_model = TransformerPredictor::new(config, 5);
    let power_model = TransformerPredictor::new(config, 6);
    println!("training surrogates on {} simulations…", data.len());
    metadse_repro::core::trendse::train_supervised(&ipc_model, &x, &ipc, 15, 2e-3, 16, 1);
    metadse_repro::core::trendse::train_supervised(&power_model, &x, &power_n, 15, 2e-3, 16, 2);

    // Explore: the surrogate sweeps thousands of configurations for the
    // cost of microseconds each.
    let front = explore_pareto(
        &space,
        |batch| {
            let i = ipc_model.predict(batch);
            let p = power_model.predict(batch);
            i.into_iter()
                .zip(p.into_iter().map(|v| v * p_scale))
                .collect()
        },
        &ExplorerConfig {
            initial_samples: 256,
            refinement_rounds: 3,
            beam: 6,
            seed: 3,
        },
    );
    println!("predicted Pareto front: {} designs", front.len());

    // Validate the front against ground truth.
    let profile_phases = PhaseSet::generate(target);
    println!("\n  predicted IPC  predicted W  simulated IPC  simulated W");
    for entry in front.iter().take(8) {
        let cfg = space.config(&entry.point);
        // Aggregate over phases like dataset generation does.
        let mut cycles = 0.0;
        let mut energy = 0.0;
        for ph in profile_phases.phases() {
            let out = simulator.simulate(&cfg, &ph.profile);
            let c = ph.weight / out.ipc.max(1e-6);
            cycles += c;
            energy += out.power_w * c;
        }
        let true_ipc = 1.0 / cycles;
        let true_power = energy / cycles;
        println!(
            "  {:>12.3}  {:>11.2}  {:>13.3}  {:>11.2}",
            entry.ipc, entry.power, true_ipc, true_power
        );
    }

    // The front should dominate the average random configuration.
    let mut rnd_rng = StdRng::seed_from_u64(4);
    let random_ipc: Vec<f64> = (0..50)
        .map(|_| {
            let p = space.random_point(&mut rnd_rng);
            simulator
                .simulate_point(&space, &p, &profile_phases.phases()[0].profile)
                .ipc
        })
        .collect();
    let best_front_ipc = front.iter().map(|e| e.ipc).fold(0.0, f64::max);
    println!(
        "\nbest predicted IPC on front: {:.3} vs mean random IPC {:.3}",
        best_front_ipc,
        metrics::mean(&random_ipc)
    );
    // Hypervolume against a loose reference corner (0 IPC, 60 W): the
    // standard multi-objective quality number for a DSE run.
    let hv = metadse_repro::core::explorer::hypervolume(&front, 0.0, 60.0);
    println!("dominated hypervolume of predicted front: {hv:.1} (ref 0 IPC / 60 W)");
    assert!(best_front_ipc > metrics::mean(&random_ipc));
    assert!(hv > 0.0);
    println!("ok: exploration finds designs well above the random baseline");
}
