//! Workload-similarity analysis (the paper's Fig. 2 motivation):
//! Wasserstein distances between the IPC label distributions of SPEC
//! CPU 2017 workloads, plus TrEnDSE-style nearest-source ranking for a
//! few-shot target.
//!
//! ```text
//! cargo run --release --example workload_similarity
//! ```

use metadse_repro::mlkit::wasserstein::wasserstein_1d;
use metadse_repro::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let space = DesignSpace::new();
    let simulator = Simulator::new();
    let mut rng = StdRng::seed_from_u64(33);

    let workloads = [
        SpecWorkload::Perlbench600,
        SpecWorkload::Mcf605,
        SpecWorkload::X264_625,
        SpecWorkload::Exchange2_648,
        SpecWorkload::Bwaves603,
        SpecWorkload::Lbm619,
        SpecWorkload::Imagick638,
    ];
    println!(
        "simulating {} workloads × 150 design points…",
        workloads.len()
    );
    let datasets: Vec<Dataset> = workloads
        .iter()
        .map(|&w| Dataset::generate(&space, &simulator, w, 150, &mut rng))
        .collect();
    let labels: Vec<Vec<f64>> = datasets.iter().map(|d| d.labels(Metric::Ipc)).collect();

    // Pairwise distance matrix (the Fig. 2 heatmap).
    println!("\npairwise Wasserstein distances (IPC distributions):");
    print!("{:>14}", "");
    for w in &workloads {
        print!("{:>10}", w.name().split('.').nth(1).unwrap_or(""));
    }
    println!();
    for (i, wi) in workloads.iter().enumerate() {
        print!("{:>14}", wi.name().split('.').nth(1).unwrap_or(""));
        for j in 0..workloads.len() {
            print!("{:>10.3}", wasserstein_1d(&labels[i], &labels[j]));
        }
        println!();
    }

    // The paper's observation: similarity is wildly inconsistent.
    let mut offdiag: Vec<f64> = Vec::new();
    for i in 0..workloads.len() {
        for j in (i + 1)..workloads.len() {
            offdiag.push(wasserstein_1d(&labels[i], &labels[j]));
        }
    }
    offdiag.sort_by(f64::total_cmp);
    println!(
        "\ndistance spread: min {:.3}, max {:.3} ({}x) — similarity-based \
         transfer cannot rely on a close source always existing",
        offdiag[0],
        offdiag[offdiag.len() - 1],
        (offdiag[offdiag.len() - 1] / offdiag[0].max(1e-9)) as u64
    );

    // TrEnDSE-style ranking from ten shots of an unseen target.
    let target = SpecWorkload::Omnetpp620;
    let target_data = Dataset::generate(&space, &simulator, target, 60, &mut rng);
    let task = TaskSampler::new(10, 40).sample(&target_data, Metric::Ipc, &mut rng);
    let trendse = TrEnDse::new(datasets.to_vec(), Metric::Ipc, TrEnDseConfig::default());
    println!("\nnearest sources for 10-shot target {}:", target.name());
    for (idx, d) in trendse.rank_sources(&task.support_y).iter().take(3) {
        println!("  {}  (W1 = {d:.3})", workloads[*idx].name());
    }
}
