//! The MetaDSE pipeline end to end at miniature scale: MAML pre-training
//! on source workloads, WAM mask generation, and few-shot adaptation to an
//! *unseen* workload — compared against adapting a randomly initialized
//! model from the same shots.
//!
//! ```text
//! cargo run --release --example cross_workload_adaptation
//! ```

use metadse_repro::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let space = DesignSpace::new();
    let simulator = Simulator::new();
    let mut rng = StdRng::seed_from_u64(9);

    // Source (training) and target (unseen) workloads.
    let sources = [
        SpecWorkload::Gcc602,
        SpecWorkload::X264_625,
        SpecWorkload::Bwaves603,
        SpecWorkload::Deepsjeng631,
    ];
    let validation = [SpecWorkload::Leela641];
    let target = SpecWorkload::Mcf605;

    println!("simulating datasets…");
    let n = 150;
    let train: Vec<Dataset> = sources
        .iter()
        .map(|&w| Dataset::generate(&space, &simulator, w, n, &mut rng))
        .collect();
    let val: Vec<Dataset> = validation
        .iter()
        .map(|&w| Dataset::generate(&space, &simulator, w, n, &mut rng))
        .collect();
    let target_data = Dataset::generate(&space, &simulator, target, n, &mut rng);

    // MAML pre-training (Algorithm 1), small budget.
    let config = PredictorConfig {
        d_model: 16,
        heads: 2,
        depth: 1,
        d_hidden: 32,
        head_hidden: 16,
        ..PredictorConfig::default()
    };
    let maml_cfg = MamlConfig {
        inner_lr: 0.05,
        epochs: 3,
        iterations_per_epoch: 12,
        val_tasks: 4,
        ..MamlConfig::paper()
    };
    let meta_model = TransformerPredictor::new(config, 1);
    println!("meta-training on {} source workloads…", sources.len());
    let report = maml::pretrain(&meta_model, &train, &val, Metric::Ipc, &maml_cfg);
    println!(
        "  best epoch {} (validation loss {:.4})",
        report.best_epoch, report.best_val_loss
    );

    // WAM mask from pre-training attention statistics (Fig. 4).
    let mask = wam::generate_mask(&meta_model, &train, &WamConfig::default(), 64);
    let kept = mask.get().to_vec().iter().filter(|&&v| v == 0.0).count();
    println!("  WAM keeps {kept}/{} parameter interactions", 21 * 21);

    // Few-shot adaptation on the unseen workload (Algorithm 2).
    let sampler = TaskSampler::new(10, 40);
    let adapt_cfg = AdaptConfig {
        steps: 10,
        lr: 0.05,
        lr_min: 1e-3,
        mask_lr_multiplier: 1.0,
    };
    let scratch_model = TransformerPredictor::new(config, 1);
    let mut meta_scores = TaskScores::new();
    let mut scratch_scores = TaskScores::new();
    let mut eval_rng = StdRng::seed_from_u64(2);
    for _ in 0..8 {
        let task = sampler.sample(&target_data, Metric::Ipc, &mut eval_rng);
        let p = wam::adapt_and_predict(&meta_model, &task, Some(&mask), &adapt_cfg);
        meta_scores.push(&task.query_y, &p);
        let p = wam::adapt_and_predict(&scratch_model, &task, None, &adapt_cfg);
        scratch_scores.push(&task.query_y, &p);
    }
    let meta = meta_scores.summary();
    let scratch = scratch_scores.summary();
    println!("\nfew-shot adaptation to unseen {}:", target.name());
    println!("  MetaDSE (meta-init + WAM): {meta}");
    println!("  random init, same shots:   {scratch}");
    assert!(
        meta.rmse_mean < scratch.rmse_mean,
        "meta-initialization should beat a random start"
    );
    println!(
        "ok: meta-learning reduces RMSE by {:.0}%",
        (1.0 - meta.rmse_mean / scratch.rmse_mean) * 100.0
    );
}
